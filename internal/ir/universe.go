package ir

// PatternSet is a dense-indexed universe of assignment patterns. All
// bit-vector analyses over assignment patterns (Tables 1 and 2) index their
// vectors by the pattern IDs of one PatternSet. AssignPattern is a
// comparable value type, so the index maps the pattern itself — pattern
// lookup (the single hottest map operation in the analyses) never
// materializes a key string.
type PatternSet struct {
	pats  []AssignPattern
	index map[AssignPattern]int
}

// AssignUniverse collects every assignment pattern occurring in g, in
// deterministic program order (block order, then instruction order). This is
// the paper's AP restricted to occurring patterns; the "enrichment" by
// h_ε := ε and v := h_ε patterns is realized operationally by the
// initialization phase, which materializes those occurrences before any
// analysis runs.
func AssignUniverse(g *Graph) *PatternSet {
	u := &PatternSet{index: map[AssignPattern]int{}}
	u.AddFrom(g)
	return u
}

// AddFrom interns every assignment pattern occurring in g into u, keeping
// existing IDs stable, and reports whether any new pattern appeared. The
// motion fixpoints use it to revalidate a cached universe cheaply: aht
// only re-inserts existing patterns and rae only removes occurrences, so
// across the rounds of one fixpoint the scan is all map hits and the
// universe (and the PatternIndex built from it) can be reused. Patterns
// that no longer occur stay in the set; their bits are simply never set by
// any local predicate, which is sound for every analysis in this module.
func (u *PatternSet) AddFrom(g *Graph) bool {
	before := len(u.pats)
	for _, b := range g.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Kind == KindAssign {
				u.Intern(b.Instrs[i].Pattern())
			}
		}
	}
	return len(u.pats) != before
}

// AddFromBlocks is AddFrom restricted to the given blocks. Callers that
// know which region of the graph changed (the incremental engine, a
// motion fixpoint that tracked its own writes) resync the universe in
// O(changed region) instead of rescanning the whole graph; the contract
// is that every block outside bs is unchanged since the last sync.
func (u *PatternSet) AddFromBlocks(bs []*Block) bool {
	before := len(u.pats)
	for _, b := range bs {
		for i := range b.Instrs {
			if b.Instrs[i].Kind == KindAssign {
				u.Intern(b.Instrs[i].Pattern())
			}
		}
	}
	return len(u.pats) != before
}

// Intern adds p to the universe if absent and returns its dense ID.
func (u *PatternSet) Intern(p AssignPattern) int {
	if id, ok := u.index[p]; ok {
		return id
	}
	id := len(u.pats)
	u.pats = append(u.pats, p)
	u.index[p] = id
	return id
}

// ID returns the dense ID of p and whether it is in the universe.
func (u *PatternSet) ID(p AssignPattern) (int, bool) {
	id, ok := u.index[p]
	return id, ok
}

// Pattern returns the pattern with dense ID id.
func (u *PatternSet) Pattern(id int) AssignPattern { return u.pats[id] }

// PatternAt returns a pointer to the pattern with dense ID id, for the
// hot analysis loops (the pattern must not be mutated).
func (u *PatternSet) PatternAt(id int) *AssignPattern { return &u.pats[id] }

// Len returns the number of patterns in the universe.
func (u *PatternSet) Len() int { return len(u.pats) }

// Patterns returns the patterns in ID order. The slice is shared; callers
// must not mutate it.
func (u *PatternSet) Patterns() []AssignPattern { return u.pats }

// ExprSet is a dense-indexed universe of expression patterns (non-trivial
// terms), the paper's EP.
type ExprSet struct {
	exprs []Term
	index map[Term]int
}

// ExprUniverse collects every expression pattern occurring in g: the
// non-trivial right-hand sides of assignments and the non-trivial sides of
// branch conditions, in deterministic program order.
func ExprUniverse(g *Graph) *ExprSet {
	u := &ExprSet{index: map[Term]int{}}
	var terms []Term
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			terms = in.Terms(terms[:0])
			for _, t := range terms {
				if !t.Trivial() {
					u.Intern(t)
				}
			}
		}
	}
	return u
}

// Intern adds ε to the universe if absent and returns its dense ID.
// It panics on trivial terms (caller bug).
func (u *ExprSet) Intern(e Term) int {
	if e.Trivial() {
		panic("ir: trivial term is not an expression pattern")
	}
	if id, ok := u.index[e]; ok {
		return id
	}
	id := len(u.exprs)
	u.exprs = append(u.exprs, e)
	u.index[e] = id
	return id
}

// ID returns the dense ID of ε and whether it is in the universe.
func (u *ExprSet) ID(e Term) (int, bool) {
	id, ok := u.index[e]
	return id, ok
}

// Expr returns the expression with dense ID id.
func (u *ExprSet) Expr(id int) Term { return u.exprs[id] }

// Len returns the number of expressions in the universe.
func (u *ExprSet) Len() int { return len(u.exprs) }

// Exprs returns the expressions in ID order. The slice is shared; callers
// must not mutate it.
func (u *ExprSet) Exprs() []Term { return u.exprs }
