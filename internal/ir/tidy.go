package ir

// Tidy cleans a graph up for presentation after optimization:
//
//  1. skip-only blocks with a single successor are bypassed (their
//     predecessors are rewired around them) — these are typically
//     synthetic edge-split nodes that received no insertions;
//  2. straight-line chains (a block with a single successor whose only
//     predecessor it is, with no intervening branch) are merged.
//
// Tidy preserves semantics exactly but may re-create critical edges, so
// it must run after, never before, the motion passes; re-optimizing a
// tidied graph simply re-splits. The entry and exit blocks are never
// removed. It returns the number of blocks eliminated.
func (g *Graph) Tidy() int {
	removed := 0
	for {
		n := g.bypassSkipBlocks() + g.mergeChains()
		if n == 0 {
			break
		}
		removed += n
	}
	if removed > 0 {
		g.version++
		g.structVersion++
	}
	return removed
}

// bypassSkipBlocks rewires predecessors around skip-only single-successor
// blocks and drops them.
func (g *Graph) bypassSkipBlocks() int {
	drop := map[NodeID]bool{}
	for _, b := range g.Blocks {
		if b.ID == g.Entry || b.ID == g.Exit {
			continue
		}
		if len(b.Succs) != 1 || b.Succs[0] == b.ID {
			continue
		}
		onlySkips := true
		for i := range b.Instrs {
			if b.Instrs[i].Kind != KindSkip {
				onlySkips = false
				break
			}
		}
		if !onlySkips {
			continue
		}
		drop[b.ID] = true
	}
	if len(drop) == 0 {
		return 0
	}
	// resolve follows dropped blocks to the surviving target.
	resolve := func(id NodeID) NodeID {
		seen := 0
		for drop[id] {
			id = g.Block(id).Succs[0]
			seen++
			if seen > len(g.Blocks) {
				panic("ir: tidy cycle of skip blocks")
			}
		}
		return id
	}
	for _, b := range g.Blocks {
		if drop[b.ID] {
			continue
		}
		for i, s := range b.Succs {
			b.Succs[i] = resolve(s)
		}
	}
	g.Entry = resolve(g.Entry)
	return g.compact(drop)
}

// mergeChains merges b with its unique successor s when s has b as its
// unique predecessor and b does not branch.
func (g *Graph) mergeChains() int {
	merged := 0
	for _, b := range g.Blocks {
		for {
			if len(b.Succs) != 1 {
				break
			}
			s := g.Block(b.Succs[0])
			if s.ID == b.ID || s.ID == g.Entry || len(s.Preds) != 1 {
				break
			}
			if b.ID == g.Exit {
				break
			}
			// Absorb s into b.
			for i := range s.Instrs {
				if s.Instrs[i].Kind != KindSkip {
					b.Instrs = append(b.Instrs, s.Instrs[i])
				}
			}
			b.Succs = append([]NodeID(nil), s.Succs...)
			s.Succs = nil
			s.Instrs = []Instr{Skip()}
			// Rewire successors' pred entries from s to b.
			for _, ns := range b.Succs {
				preds := g.Block(ns).Preds
				for i, p := range preds {
					if p == s.ID {
						preds[i] = b.ID
					}
				}
			}
			if s.ID == g.Exit {
				g.Exit = b.ID
			}
			// Mark s dropped by cutting it loose; compact below.
			s.Preds = nil
			merged++
			// b now ends like s did; try to keep merging.
		}
	}
	if merged == 0 {
		return 0
	}
	drop := map[NodeID]bool{}
	for _, b := range g.Blocks {
		if b.ID != g.Entry && b.ID != g.Exit && len(b.Preds) == 0 && len(b.Succs) == 0 {
			drop[b.ID] = true
		}
	}
	return g.compact(drop)
}

// compact removes the dropped blocks, renumbers IDs densely, and rebuilds
// predecessor lists.
func (g *Graph) compact(drop map[NodeID]bool) int {
	if len(drop) == 0 {
		return 0
	}
	remap := make(map[NodeID]NodeID, len(g.Blocks))
	var kept []*Block
	for _, b := range g.Blocks {
		if drop[b.ID] {
			continue
		}
		remap[b.ID] = NodeID(len(kept))
		kept = append(kept, b)
	}
	for _, b := range kept {
		oldID := b.ID
		b.ID = remap[oldID]
		succs := b.Succs[:0]
		for _, s := range b.Succs {
			if ns, ok := remap[s]; ok {
				succs = append(succs, ns)
			}
		}
		b.Succs = succs
		b.Preds = b.Preds[:0]
	}
	g.Blocks = kept
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			g.Block(s).Preds = append(g.Block(s).Preds, b.ID)
		}
	}
	g.Entry = remap[g.Entry]
	g.Exit = remap[g.Exit]
	g.Normalize()
	return len(drop)
}
