package ir

import (
	"strings"
	"testing"
)

func TestBuilderHelperMethods(t *testing.T) {
	b := NewBuilder("helpers")
	b.Block("a").
		AssignVar("x", "y").
		AssignBin("z", OpMul, VarOp("x"), ConstOp(3)).
		Instr(NewOut(VarOp("z")))
	b.Block("e").OutVars("x", "z")
	b.Edge("a", "e")
	g := b.MustFinish("a", "e")
	keys := make([]string, 0, 3)
	for _, in := range g.BlockByName("a").Instrs {
		keys = append(keys, in.Key())
	}
	want := []string{"x:=y", "z:=x*3", "out(z)"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestBuilderFinishErrors(t *testing.T) {
	b := NewBuilder("bad")
	b.Block("a").Assign("x", ConstTerm(1))
	b.Block("e").OutVars("x")
	b.Edge("a", "e")
	if _, err := b.Finish("nope", "e"); err == nil || !strings.Contains(err.Error(), "unknown entry") {
		t.Errorf("err = %v", err)
	}
	if _, err := b.Finish("a", "nope"); err == nil || !strings.Contains(err.Error(), "unknown exit") {
		t.Errorf("err = %v", err)
	}
}

func TestBuilderMustFinishPanics(t *testing.T) {
	b := NewBuilder("bad")
	b.Block("a").Assign("x", ConstTerm(1))
	defer func() {
		if recover() == nil {
			t.Error("MustFinish did not panic on invalid graph")
		}
	}()
	b.MustFinish("a", "missing")
}

func TestInstrStringForms(t *testing.T) {
	cases := map[string]Instr{
		"skip":          Skip(),
		"x := a+b":      NewAssign("x", BinTerm(OpAdd, VarOp("a"), VarOp("b"))),
		"out(x, 3)":     NewOut(VarOp("x"), ConstOp(3)),
		"if a < b":      NewCond(OpLT, VarTerm("a"), VarTerm("b")),
		"if a+1 >= b*2": NewCond(OpGE, BinTerm(OpAdd, VarOp("a"), ConstOp(1)), BinTerm(OpMul, VarOp("b"), ConstOp(2))),
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if got := VarTerm("q").String(); got != "q" {
		t.Errorf("term String = %q", got)
	}
}

func TestPatternPanicsOnNonAssign(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pattern on out did not panic")
		}
	}()
	NewOut(VarOp("x")).Pattern()
}

func TestNewCondPanicsOnArith(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCond accepted an arithmetic operator")
		}
	}()
	NewCond(OpAdd, VarTerm("a"), VarTerm("b"))
}

func TestInstrEqualCrossKind(t *testing.T) {
	a := NewAssign("x", VarTerm("y"))
	c := NewCond(OpLT, VarTerm("x"), VarTerm("y"))
	o := NewOut(VarOp("x"))
	s := Skip()
	ins := []Instr{a, c, o, s}
	for i := range ins {
		for j := range ins {
			if (i == j) != ins[i].Equal(ins[j]) {
				t.Errorf("Equal(%v, %v) wrong", ins[i], ins[j])
			}
		}
	}
	// Same kind, different payloads.
	if NewCond(OpLT, VarTerm("x"), VarTerm("y")).Equal(NewCond(OpLT, VarTerm("x"), VarTerm("z"))) {
		t.Error("different conds equal")
	}
}

func TestExprSetAccessors(t *testing.T) {
	g := NewGraph("u")
	b := g.AddBlock("a")
	ab := BinTerm(OpAdd, VarOp("a"), VarOp("b"))
	b.Instrs = []Instr{NewAssign("x", ab), NewCond(OpLT, VarTerm("x"), ConstTerm(9))}
	eu := ExprUniverse(g)
	if eu.Len() != 1 {
		t.Fatalf("len = %d", eu.Len())
	}
	if id, ok := eu.ID(ab); !ok || eu.Expr(id).Key() != "a+b" {
		t.Errorf("ID/Expr wrong")
	}
	if _, ok := eu.ID(BinTerm(OpMul, VarOp("a"), VarOp("b"))); ok {
		t.Error("found absent expression")
	}
	defer func() {
		if recover() == nil {
			t.Error("Intern accepted a trivial term")
		}
	}()
	eu.Intern(VarTerm("x"))
}

func TestPatternSetAccessors(t *testing.T) {
	u := &PatternSet{}
	// Zero value is unusable without index; use AssignUniverse instead.
	g := NewGraph("p")
	b := g.AddBlock("a")
	b.Instrs = []Instr{NewAssign("x", VarTerm("y")), NewAssign("x", VarTerm("y"))}
	u = AssignUniverse(g)
	if u.Len() != 1 {
		t.Fatalf("len = %d", u.Len())
	}
	if u.PatternAt(0).Key() != "x:=y" || u.Pattern(0).Key() != "x:=y" {
		t.Error("accessors disagree")
	}
	if len(u.Patterns()) != 1 {
		t.Error("Patterns wrong")
	}
}
