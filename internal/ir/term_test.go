package ir

import "testing"

func TestOperandKey(t *testing.T) {
	if got := VarOp("a").Key(); got != "a" {
		t.Errorf("VarOp key = %q, want a", got)
	}
	if got := ConstOp(42).Key(); got != "42" {
		t.Errorf("ConstOp key = %q, want 42", got)
	}
	if got := ConstOp(-7).Key(); got != "-7" {
		t.Errorf("ConstOp key = %q, want -7", got)
	}
}

func TestTermKeyAndTriviality(t *testing.T) {
	ab := BinTerm(OpAdd, VarOp("a"), VarOp("b"))
	if ab.Trivial() {
		t.Error("a+b reported trivial")
	}
	if got := ab.Key(); got != "a+b" {
		t.Errorf("key = %q, want a+b", got)
	}
	if !VarTerm("x").Trivial() {
		t.Error("x reported non-trivial")
	}
	if !ConstTerm(3).Trivial() {
		t.Error("3 reported non-trivial")
	}
	// Patterns are syntactic: a+b and b+a are distinct.
	ba := BinTerm(OpAdd, VarOp("b"), VarOp("a"))
	if ab.Key() == ba.Key() {
		t.Error("a+b and b+a share a key; patterns must be syntactic")
	}
}

func TestTermUsesVar(t *testing.T) {
	tm := BinTerm(OpMul, VarOp("x"), ConstOp(3))
	if !tm.UsesVar("x") {
		t.Error("x*3 does not use x")
	}
	if tm.UsesVar("y") {
		t.Error("x*3 uses y")
	}
	if n := len(tm.Vars(nil)); n != 1 {
		t.Errorf("x*3 has %d vars, want 1", n)
	}
}

func TestBinTermRejectsRelationalOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BinTerm accepted a relational operator")
		}
	}()
	BinTerm(OpLT, VarOp("a"), VarOp("b"))
}

func TestAssignPattern(t *testing.T) {
	p := AssignPattern{LHS: "x", RHS: BinTerm(OpAdd, VarOp("a"), VarOp("b"))}
	if got := p.Key(); got != "x:=a+b" {
		t.Errorf("key = %q", got)
	}
	if p.SelfReferential() {
		t.Error("x := a+b reported self-referential")
	}
	q := AssignPattern{LHS: "x", RHS: BinTerm(OpAdd, VarOp("x"), ConstOp(1))}
	if !q.SelfReferential() {
		t.Error("x := x+1 not reported self-referential")
	}
}

func TestIsTempName(t *testing.T) {
	cases := map[Var]bool{
		"h1":   true,
		"h42":  true,
		"h":    false,
		"hx":   false,
		"x":    false,
		"h1a":  false,
		"H1":   false,
		"hole": false,
	}
	for v, want := range cases {
		if got := IsTempName(v); got != want {
			t.Errorf("IsTempName(%q) = %v, want %v", v, got, want)
		}
	}
}

func TestOpClasses(t *testing.T) {
	for _, o := range []Op{OpAdd, OpSub, OpMul, OpDiv, OpRem} {
		if !o.IsArith() || o.IsRel() {
			t.Errorf("%q misclassified", o)
		}
	}
	for _, o := range []Op{OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE} {
		if o.IsArith() || !o.IsRel() {
			t.Errorf("%q misclassified", o)
		}
	}
}
