package ir

import (
	"reflect"
	"strconv"
	"testing"
)

func itoa(i int) string { return strconv.Itoa(i) }

// regionChain builds nd diamonds in a row (entry → d0 → {a0|b0} → j0 →
// d1 → …) with a back edge from the last join to diamond `loop` (no back
// edge when loop < 0). When reversed, blocks are declared in the
// opposite order — the structure, and therefore the canonical
// decomposition, must not change.
func regionChain(t *testing.T, nd, loop int, reversed bool) *Graph {
	t.Helper()
	b := NewBuilder("regions")
	declare := func(i int) {
		d, a, jn := "d"+itoa(i), "a"+itoa(i), "j"+itoa(i)
		bb := "b" + itoa(i)
		b.Block(d).Cond(OpLT, BinTerm(OpAdd, VarOp("u"), VarOp("v")), ConstTerm(7))
		b.Block(a).AssignBin(Var("x"+itoa(i)), OpAdd, VarOp("p"), VarOp("q"))
		b.Block(bb).AssignBin(Var("z"+itoa(i)), OpSub, VarOp("p"), VarOp("q"))
		b.Block(jn).AssignVar(Var("w"+itoa(i)), Var("x"+itoa(i)))
		if loop >= 0 && i == nd-1 {
			// The looping join branches: fall out to done or back to the
			// loop head.
			b.Block(jn).Cond(OpLT, VarTerm(Var("w"+itoa(i))), ConstTerm(0))
		}
	}
	if reversed {
		b.Block("done").Out(VarOp("u"))
		for i := nd - 1; i >= 0; i-- {
			declare(i)
		}
		b.Block("s").AssignBin("pre", OpAdd, VarOp("u"), VarOp("v"))
	} else {
		b.Block("s").AssignBin("pre", OpAdd, VarOp("u"), VarOp("v"))
		for i := 0; i < nd; i++ {
			declare(i)
		}
		b.Block("done").Out(VarOp("u"))
	}
	b.Edge("s", "d0")
	for i := 0; i < nd; i++ {
		d, a, jn := "d"+itoa(i), "a"+itoa(i), "j"+itoa(i)
		bb := "b" + itoa(i)
		b.Edge(d, a)
		b.Edge(d, bb)
		b.Edge(a, jn)
		b.Edge(bb, jn)
		next := "done"
		if i < nd-1 {
			next = "d" + itoa(i+1)
		}
		b.Edge(jn, next)
	}
	if loop >= 0 {
		b.Edge("j"+itoa(nd-1), "d"+itoa(loop))
	}
	g, err := b.Finish("s", "done")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func TestRegionizePartition(t *testing.T) {
	g := regionChain(t, 40, -1, false)
	rs := Regionize(g, 0)
	if rs.Len() < 2 {
		t.Fatalf("expected a multi-region decomposition of %d blocks, got %d regions", len(g.Blocks), rs.Len())
	}
	seen := make([]int, len(g.Blocks))
	for r, region := range rs.Regions {
		if len(region) == 0 {
			t.Fatalf("region %d is empty", r)
		}
		if len(region) > DefaultRegionTarget {
			t.Fatalf("region %d has %d blocks, target %d (no SCC here exceeds the target)", r, len(region), DefaultRegionTarget)
		}
		for _, id := range region {
			seen[id]++
			if rs.Of[id] != r {
				t.Fatalf("block %d listed in region %d but Of says %d", id, r, rs.Of[id])
			}
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("block %d appears in %d regions, want exactly 1", id, n)
		}
	}
}

func TestRegionizeSingleEntry(t *testing.T) {
	g := regionChain(t, 40, -1, false)
	rs := Regionize(g, 0)
	for r, region := range rs.Regions {
		entries := 0
		for _, id := range region {
			if id == g.Entry {
				entries++
				continue
			}
			for _, p := range g.Block(id).Preds {
				if rs.Of[p] != r {
					entries++
					break
				}
			}
		}
		// Every component of this graph is a single block, so the greedy
		// grouping never has to accept a multi-entry region.
		if entries > 1 {
			t.Fatalf("region %d has %d entry blocks, want at most 1", r, entries)
		}
	}
}

func TestRegionizeDeterministic(t *testing.T) {
	g := regionChain(t, 25, 3, false)
	a, b := Regionize(g, 0), Regionize(g, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Regionize runs on the same graph disagree")
	}
}

func TestRegionizeDeclarationOrderInvariant(t *testing.T) {
	fwd := regionChain(t, 25, 3, false)
	rev := regionChain(t, 25, 3, true)
	if fwd.Fingerprint() != rev.Fingerprint() {
		t.Fatal("structurally equal graphs have different fingerprints")
	}
	rsF, digF := fwd.RegionDigests()
	rsR, digR := rev.RegionDigests()
	if !reflect.DeepEqual(digF, digR) {
		t.Fatalf("region digests depend on declaration order:\nfwd: %v\nrev: %v", digF, digR)
	}
	if rsF.Len() != rsR.Len() {
		t.Fatalf("region counts differ: %d vs %d", rsF.Len(), rsR.Len())
	}
	for r := range rsF.Regions {
		if len(rsF.Regions[r]) != len(rsR.Regions[r]) {
			t.Fatalf("region %d sizes differ: %d vs %d", r, len(rsF.Regions[r]), len(rsR.Regions[r]))
		}
	}
}

func TestRegionizeLoopUnsplit(t *testing.T) {
	// A back edge from the last join to diamond 3 puts diamonds 3..24 in
	// one SCC of 4*22 = 88 > DefaultRegionTarget blocks: the component
	// must still land in a single region.
	g := regionChain(t, 25, 3, false)
	rs := Regionize(g, 0)
	first := rs.Of[g.BlockByName("d3").ID]
	for i := 3; i < 25; i++ {
		for _, name := range []string{"d", "a", "b", "j"} {
			if got := rs.Of[g.BlockByName(name+itoa(i)).ID]; got != first {
				t.Fatalf("loop block %s%d in region %d, loop head in %d: SCC was split", name, i, got, first)
			}
		}
	}
}
