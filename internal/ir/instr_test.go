package ir

import (
	"reflect"
	"testing"
)

func TestSelfAssignIsSkip(t *testing.T) {
	in := NewAssign("x", VarTerm("x"))
	if in.Kind != KindSkip {
		t.Fatalf("x := x yielded %v, want skip", in)
	}
	// h := h is likewise skip; this identification underlies the local
	// confluence of the rewrite relation (Lemma 3.6).
	in = NewAssign("h1", VarTerm("h1"))
	if in.Kind != KindSkip {
		t.Fatalf("h1 := h1 yielded %v, want skip", in)
	}
	// x := x+0 is NOT skip: it is a genuine computation.
	in = NewAssign("x", BinTerm(OpAdd, VarOp("x"), ConstOp(0)))
	if in.Kind != KindAssign {
		t.Fatalf("x := x+0 yielded %v, want assignment", in)
	}
}

func TestInstrUsesDefs(t *testing.T) {
	assign := NewAssign("x", BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	if got := assign.Uses(nil); !reflect.DeepEqual(got, []Var{"a", "b"}) {
		t.Errorf("uses = %v", got)
	}
	if v, ok := assign.Defs(); !ok || v != "x" {
		t.Errorf("defs = %v %v", v, ok)
	}
	if !assign.ModifiesVar("x") || assign.ModifiesVar("a") {
		t.Error("ModifiesVar wrong for assignment")
	}

	out := NewOut(VarOp("i"), VarOp("x"), ConstOp(1))
	if got := out.Uses(nil); !reflect.DeepEqual(got, []Var{"i", "x"}) {
		t.Errorf("out uses = %v", got)
	}
	if _, ok := out.Defs(); ok {
		t.Error("out defines a variable")
	}

	cond := NewCond(OpGT, BinTerm(OpAdd, VarOp("x"), VarOp("z")), BinTerm(OpAdd, VarOp("y"), VarOp("i")))
	if got := cond.Uses(nil); !reflect.DeepEqual(got, []Var{"x", "z", "y", "i"}) {
		t.Errorf("cond uses = %v", got)
	}
	if !cond.UsesVar("z") || cond.UsesVar("q") {
		t.Error("cond UsesVar wrong")
	}
}

func TestInstrKeysDistinct(t *testing.T) {
	ins := []Instr{
		Skip(),
		NewAssign("x", VarTerm("y")),
		NewAssign("x", BinTerm(OpAdd, VarOp("a"), VarOp("b"))),
		NewAssign("y", BinTerm(OpAdd, VarOp("a"), VarOp("b"))),
		NewOut(VarOp("x")),
		NewOut(VarOp("x"), VarOp("y")),
		NewCond(OpLT, VarTerm("a"), VarTerm("b")),
		NewCond(OpLE, VarTerm("a"), VarTerm("b")),
	}
	seen := map[string]bool{}
	for _, in := range ins {
		k := in.Key()
		if seen[k] {
			t.Errorf("duplicate key %q", k)
		}
		seen[k] = true
	}
}

func TestInstrEqual(t *testing.T) {
	a := NewAssign("x", BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	b := NewAssign("x", BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	c := NewAssign("x", BinTerm(OpAdd, VarOp("a"), VarOp("c")))
	if !a.Equal(b) {
		t.Error("identical assignments not equal")
	}
	if a.Equal(c) {
		t.Error("different assignments equal")
	}
	o1 := NewOut(VarOp("x"))
	o2 := NewOut(VarOp("x"), VarOp("y"))
	if o1.Equal(o2) {
		t.Error("different-arity outs equal")
	}
	if !o1.Equal(NewOut(VarOp("x"))) {
		t.Error("identical outs not equal")
	}
}

func TestInstrTerms(t *testing.T) {
	cond := NewCond(OpGT, BinTerm(OpAdd, VarOp("x"), VarOp("z")), VarTerm("y"))
	terms := cond.Terms(nil)
	if len(terms) != 2 {
		t.Fatalf("cond has %d terms, want 2", len(terms))
	}
	if terms[0].Key() != "x+z" || terms[1].Key() != "y" {
		t.Errorf("terms = %v", terms)
	}
	assign := NewAssign("x", BinTerm(OpMul, VarOp("a"), ConstOp(2)))
	if terms := assign.Terms(nil); len(terms) != 1 || terms[0].Key() != "a*2" {
		t.Errorf("assign terms = %v", terms)
	}
	if terms := NewOut(VarOp("x")).Terms(nil); len(terms) != 0 {
		t.Errorf("out terms = %v", terms)
	}
}
