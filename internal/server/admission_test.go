package server

// Load-shedding tests: with the worker budget saturated and the wait
// queue full, the daemon answers 429 + Retry-After instead of queueing
// unboundedly — and once the pressure lifts, the admitted requests
// finish and no goroutines are left behind.

import (
	"net/http"
	"runtime"
	"testing"
	"time"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

// gateInject wraps every pass so its body blocks until gate is closed,
// holding worker slots open for as long as the test wants.
func gateInject(gate chan struct{}) func(int, pass.Pass) pass.Pass {
	return func(index int, p pass.Pass) pass.Pass {
		orig := p.RunWith
		p.RunWith = func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			<-gate
			return orig(g, s)
		}
		return p
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAdmissionShedsWith429(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Inject: gateInject(gate)})

	type answer struct {
		status int
		resp   OptimizeResponse
	}
	fire := func(i int) chan answer {
		ch := make(chan answer, 1)
		go func() {
			var resp OptimizeResponse
			hr := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Program: distinctProgram(i)}, &resp)
			ch <- answer{hr.StatusCode, resp}
		}()
		return ch
	}

	// Saturate: one request holds the only worker slot, one fills the
	// queue. Wait for each to actually arrive before sending the next so
	// the occupancy is deterministic.
	first := fire(0)
	waitFor(t, "first request in flight", func() bool { return srv.met.inflight.Load() == 1 })
	second := fire(1)
	waitFor(t, "second request queued", func() bool { return srv.adm.queued() == 1 })

	// Everything beyond (slot + queue) must shed, immediately.
	for i := 2; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
			postBody(t, OptimizeRequest{Program: distinctProgram(i)}))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("request %d: status = %d; want 429", i, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Errorf("request %d: 429 without Retry-After", i)
		}
		resp.Body.Close()
	}

	// Batches see the same pressure up front, before any bytes stream.
	resp, err := http.Post(ts.URL+"/v1/optimize/batch", "application/json",
		postBody(t, BatchRequest{Programs: []BatchProgram{{Program: distinctProgram(9)}}}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("batch under pressure: status = %d; want 429", resp.StatusCode)
	}
	resp.Body.Close()

	// Lift the gate: the two admitted requests complete normally.
	close(gate)
	for i, ch := range []chan answer{first, second} {
		a := <-ch
		if a.status != http.StatusOK || a.resp.Outcome != "optimized" {
			t.Errorf("admitted request %d: status=%d outcome=%q", i, a.status, a.resp.Outcome)
		}
	}

	// The shed counter saw every rejection.
	if got := srv.met.shed.Load(); got != 4 {
		t.Errorf("shed counter = %d; want 4", got)
	}
}

// TestAdmissionLeavesNoGoroutines: after a shed-heavy burst fully
// drains, the goroutine count returns to its pre-burst level.
func TestAdmissionLeavesNoGoroutines(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Inject: gateInject(gate)})

	before := runtime.NumGoroutine()
	done := make(chan struct{}, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
				postBody(t, OptimizeRequest{Program: distinctProgram(100 + i)}))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	waitFor(t, "burst to saturate", func() bool { return srv.met.inflight.Load() == 1 })
	close(gate)
	for i := 0; i < 8; i++ {
		<-done
	}

	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+3
	})
}
