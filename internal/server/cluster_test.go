package server

// Cluster integration tests: an in-process multi-daemon cluster over
// httptest listeners. The degraded-cluster chaos tests run a worker kill
// mid-batch (CloseClientConnections + Close is the in-process kill -9)
// and assert the ISSUE's invariants: every job completes exactly once,
// the output is byte-identical to a single-node run, and no store is
// poisoned. The distributed single-flight test pins the "exactly one
// optimization cluster-wide" property to the cache-miss metric.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/cluster"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

// newTestCluster boots n worker daemons that each know the other n-1 as
// peers. mutate (optional) adjusts one node's Config before it boots.
func newTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) ([]*Server, []*httptest.Server, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	srvs := make([]*Server, n)
	tss := make([]*httptest.Server, n)
	for i := range srvs {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{
			Workers:    4,
			QueueDepth: 64,
			Cluster: &cluster.Config{
				Self:          urls[i],
				Peers:         peers,
				ProbeInterval: 20 * time.Millisecond,
				DownBackoff:   20 * time.Millisecond,
				// Generous hedge threshold: these tests assert exact
				// compute counts, which hedging's deliberate duplicate
				// work would break.
				HedgeAfter:   2 * time.Second,
				RetryBackoff: 5 * time.Millisecond,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatalf("New node %d: %v", i, err)
		}
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		srvs[i], tss[i] = srv, ts
		t.Cleanup(func() {
			ts.Close() // idempotent; chaos tests kill some nodes early
			srv.Close()
		})
	}
	return srvs, tss, urls
}

// TestClusterDistributedSingleFlight: N concurrent requests for ONE
// fingerprint, spread across every node of the cluster, must run exactly
// one optimization cluster-wide — consistent-hash routing sends them all
// to the owner, whose engine-level single-flight collapses them.
func TestClusterDistributedSingleFlight(t *testing.T) {
	srvs, tss, _ := newTestCluster(t, 3, nil)
	prog := distinctProgram(1001)

	const N = 24
	var wg sync.WaitGroup
	errs := make(chan string, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(OptimizeRequest{Program: prog})
			resp, err := http.Post(tss[i%len(tss)].URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			var out OptimizeResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- "decode: " + err.Error()
				return
			}
			if resp.StatusCode != http.StatusOK || out.Outcome != "optimized" {
				errs <- fmt.Sprintf("request %d: status=%d outcome=%q error=%q", i, resp.StatusCode, out.Outcome, out.Error)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	var misses int64
	for _, s := range srvs {
		misses += s.met.cacheMisses.Load()
	}
	if misses != 1 {
		t.Fatalf("cluster-wide cache misses = %d; want exactly 1 optimization for 1 fingerprint", misses)
	}
}

// TestClusterRemoteCacheTier: a node computing a graph it does not own
// consults the owner's persistent store before running any pass, and a
// remote hit is never written through to the local store.
func TestClusterRemoteCacheTier(t *testing.T) {
	srvs, tss, urls := newTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.CacheDir = t.TempDir()
	})
	prog := distinctProgram(2002)
	g, err := parseProgram("", "", prog)
	if err != nil {
		t.Fatal(err)
	}
	owner := 0
	if srvs[0].node.Owner(g.Fingerprint().String()) != urls[0] {
		owner = 1
	}
	other := 1 - owner

	// Seed the owner's store with the computed result.
	var seed OptimizeResponse
	if resp := postJSON(t, tss[owner].URL+"/v1/optimize", OptimizeRequest{Program: prog}, &seed); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed status %d", resp.StatusCode)
	}
	if srvs[owner].store.Len() != 1 {
		t.Fatalf("owner store entries = %d, want 1", srvs[owner].store.Len())
	}

	// Make the non-owner compute "locally" (the forwarded-request path,
	// which never re-forwards): its engine misses both local tiers and
	// must fetch the entry from the owner — a disk-tier hit with zero
	// passes run.
	req, err := http.NewRequest(http.MethodPost, tss[other].URL+"/v1/optimize", postBody(t, OptimizeRequest{Program: prog}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "test-client")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit || out.CacheTier != "disk" {
		t.Fatalf("non-owner answer: cacheHit=%v tier=%q; want a disk-tier hit via the owner's store", out.CacheHit, out.CacheTier)
	}
	if out.Program != seed.Program {
		t.Fatal("remote-served program differs from the owner's result")
	}
	if srvs[other].store.Len() != 0 {
		t.Fatalf("remote hit was persisted locally: %d entries", srvs[other].store.Len())
	}
}

// slowAM returns an injector that delays the "am" pass, keeping jobs
// in flight long enough for a mid-batch kill to land on them.
func slowAM(d time.Duration) func(int, pass.Pass) pass.Pass {
	return func(_ int, p pass.Pass) pass.Pass {
		if p.Name == "am" {
			orig := p.RunWith
			p.RunWith = func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
				time.Sleep(d)
				return orig(g, s)
			}
		}
		return p
	}
}

// TestClusterKilledWorkerMidBatchRedistributes is the degraded-cluster
// chaos suite's core: a two-node cluster streams a batch through node A
// while node B (owner of roughly half the jobs) is killed mid-stream.
// Every job must complete exactly once, the stream must stay one
// well-formed NDJSON response, and the output must be byte-identical to
// a single-node run of the same batch.
func TestClusterKilledWorkerMidBatchRedistributes(t *testing.T) {
	const jobs = 40
	progs := make([]BatchProgram, jobs)
	for i := range progs {
		progs[i] = BatchProgram{Name: fmt.Sprintf("g%d", i), Program: distinctProgram(3000 + i)}
	}

	// Reference run: one plain daemon, no cluster, no injection.
	_, refTS := newTestServer(t, Config{})
	refResults, refSummary := postBatch(t, refTS.URL, BatchRequest{Programs: progs})
	if refSummary.Failed != 0 || len(refResults) != jobs {
		t.Fatalf("reference run: %d results, %d failed", len(refResults), refSummary.Failed)
	}
	want := make(map[int]OptimizeResponse, jobs)
	for _, r := range refResults {
		want[r.Index] = r
	}

	// Cluster run: node B computes slowly so the kill lands on its
	// in-flight jobs.
	srvs, tss, _ := newTestCluster(t, 2, func(i int, cfg *Config) {
		if i == 1 {
			cfg.Inject = slowAM(25 * time.Millisecond)
		}
	})

	body, err := json.Marshal(BatchRequest{Programs: progs, DeadlineMs: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tss[0].URL+"/v1/optimize/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	var results []OptimizeResponse
	var summary *BatchSummary
	killed := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var sum struct {
			Summary *BatchSummary `json:"summary"`
		}
		if err := json.Unmarshal(line, &sum); err == nil && sum.Summary != nil {
			summary = sum.Summary
			continue
		}
		var r OptimizeResponse
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		results = append(results, r)
		if !killed && len(results) >= 3 {
			// kill -9, in process form: every open connection dies
			// mid-flight and the listener stops accepting.
			tss[1].CloseClientConnections()
			tss[1].Close()
			killed = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream broke: %v", err)
	}
	if !killed {
		t.Fatal("batch finished before the kill landed")
	}
	if summary == nil {
		t.Fatal("stream has no summary line")
	}

	// Exactly once: every index appears one time, none lost, none doubled.
	seen := map[int]bool{}
	for _, r := range results {
		if seen[r.Index] {
			t.Fatalf("job %d answered twice", r.Index)
		}
		seen[r.Index] = true
	}
	if len(results) != jobs {
		t.Fatalf("%d results for %d jobs", len(results), jobs)
	}

	// Byte-identical to the single-node run, kill or no kill.
	for _, r := range results {
		ref := want[r.Index]
		if r.Outcome != ref.Outcome {
			t.Fatalf("job %d (%s): outcome %q, single-node run said %q (error: %s)", r.Index, r.Name, r.Outcome, ref.Outcome, r.Error)
		}
		if r.Program != ref.Program {
			t.Fatalf("job %d (%s): output differs from the single-node run:\n--- cluster\n%s--- single\n%s",
				r.Index, r.Name, r.Program, ref.Program)
		}
	}
	if summary.Failed != 0 || summary.Degraded != 0 {
		t.Fatalf("summary: %+v; want everything optimized", summary)
	}

	// The kill was observed: jobs re-enqueued away from the dead peer.
	if srvs[0].node.Metrics().RedistributedCount() == 0 {
		t.Fatal("no job was redistributed despite the mid-batch kill")
	}

	// No store was poisoned: node A runs memory-only here (store nil) and
	// the invariant for stores is covered by the degraded-cluster test
	// below; what must hold is that A's engine answered every redistributed
	// job itself — a second identical batch to A must not require B.
	results2, summary2 := postBatch(t, tss[0].URL, BatchRequest{Programs: progs})
	if len(results2) != jobs || summary2.Failed != 0 {
		t.Fatalf("replay on the surviving node: %d results, %d failed", len(results2), summary2.Failed)
	}
}

// TestClusterDegradedNeverCachedAnywhere: with every node's pipeline
// sabotaged (the injected "am" panic absorbed by OnError=skip), every
// response is degraded and NO node's persistent store gains an entry —
// the degraded-never-cached invariant holds across forwards.
func TestClusterDegradedNeverCachedAnywhere(t *testing.T) {
	boom := func(_ int, p pass.Pass) pass.Pass {
		if p.Name == "am" {
			p.RunWith = func(_ *ir.Graph, _ *analysis.Session) (pass.Stats, error) {
				panic("injected")
			}
		}
		return p
	}
	srvs, tss, _ := newTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.CacheDir = t.TempDir()
		cfg.Inject = boom
	})
	for i := 0; i < 10; i++ {
		var out OptimizeResponse
		resp := postJSON(t, tss[i%2].URL+"/v1/optimize",
			OptimizeRequest{Program: distinctProgram(4000 + i), OnError: "skip"}, &out)
		if resp.StatusCode != http.StatusOK || out.Outcome != "degraded" {
			t.Fatalf("request %d: status=%d outcome=%q", i, resp.StatusCode, out.Outcome)
		}
	}
	for i, s := range srvs {
		if n := s.store.Len(); n != 0 {
			t.Fatalf("node %d persisted %d degraded results", i, n)
		}
	}
}

// TestClusterTypedPeerErrors: with local fallback disabled, a dead
// cluster answers typed 503 peer-unavailable — and with fallback on
// (default), the same topology keeps serving by computing locally.
func TestClusterTypedPeerErrors(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	mk := func(noFallback bool) (*Server, *httptest.Server) {
		srv, err := New(Config{
			NoLocalFallback: noFallback,
			Cluster: &cluster.Config{
				Self:          "http://coordinator.test:1",
				Peers:         []string{dead.URL},
				Mode:          cluster.ModeCoordinator,
				ProbeInterval: 10 * time.Millisecond,
				DownBackoff:   10 * time.Millisecond,
				Retries:       -1,
				HedgeAfter:    -1,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })

		// Wait for the prober to flip the optimistic initial state.
		deadline := time.Now().Add(2 * time.Second)
		for srv.node.HealthyPeerCount() > 0 {
			if time.Now().After(deadline) {
				t.Fatal("dead peer never marked down")
			}
			time.Sleep(5 * time.Millisecond)
		}
		return srv, ts
	}

	// Strict coordinator: typed 503, and /readyz says not-ready.
	_, strict := mk(true)
	var eb errorBody
	if resp := postJSON(t, strict.URL+"/v1/optimize", OptimizeRequest{Program: distinctProgram(5001)}, &eb); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("strict dead-cluster status = %d, want 503", resp.StatusCode)
	}
	if eb.ErrorKind != "peer-unavailable" {
		t.Fatalf("errorKind = %q, want peer-unavailable", eb.ErrorKind)
	}
	if resp, _ := getBody(t, strict.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("strict /readyz = %d, want 503", resp.StatusCode)
	}
	// Liveness is unchanged by peer health: the process itself is fine.
	if resp, _ := getBody(t, strict.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("strict /healthz = %d, want 200", resp.StatusCode)
	}

	// Fallback coordinator: degraded but fully available.
	_, lax := mk(false)
	var out OptimizeResponse
	if resp := postJSON(t, lax.URL+"/v1/optimize", OptimizeRequest{Program: distinctProgram(5002)}, &out); resp.StatusCode != http.StatusOK || out.Outcome != "optimized" {
		t.Fatalf("fallback dead-cluster: status=%d outcome=%q", resp.StatusCode, out.Outcome)
	}
	if resp, _ := getBody(t, lax.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback /readyz = %d, want 200 (it can serve everything itself)", resp.StatusCode)
	}
}

// TestReadyzSingleNode: outside cluster mode /readyz mirrors drain state,
// and /healthz keeps its PR 5 semantics (drain turns it 503 too).
func TestReadyzSingleNode(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if resp, body := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d (%s), want 200", resp.StatusCode, body)
	}
	srv.Drain()
	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained /readyz = %d, want 503", resp.StatusCode)
	}
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained /healthz = %d, want 503 (unchanged drain contract)", resp.StatusCode)
	}
}

// TestClusterMetricsExposed: /metrics on a cluster node carries the
// cluster section — peer-up gauge, ring shares, forward counters.
func TestClusterMetricsExposed(t *testing.T) {
	_, tss, _ := newTestCluster(t, 2, nil)
	// Drive one forwarded request so the forward counter has a row.
	for i := 0; i < 8; i++ {
		postJSON(t, tss[0].URL+"/v1/optimize", OptimizeRequest{Program: distinctProgram(6000 + i)}, nil)
	}
	_, body := getBody(t, tss[0].URL+"/metrics")
	for _, want := range []string{
		"amoptd_cluster_peer_up{",
		"amoptd_cluster_ring_members 2",
		"amoptd_cluster_ring_share{",
		"amoptd_cluster_retries_total",
		"amoptd_cluster_hedges_total",
		"amoptd_cluster_redistributed_total",
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !bytes.Contains([]byte(body), []byte("amoptd_cluster_forwards_total{")) {
		t.Errorf("/metrics has no per-peer forward counter after %d spread requests", 8)
	}
}
