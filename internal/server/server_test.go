package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"assignmentmotion/internal/corpus"
)

// newTestServer boots a Server over httptest and tears both down with t.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return srv, ts
}

// postJSON posts v and decodes the JSON answer into out (when non-nil).
func postJSON(t *testing.T, url string, v any, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, string(b)
}

// postBody marshals v for a hand-rolled http.Post.
func postBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return bytes.NewReader(b)
}

// postBatch posts a batch request and decodes the NDJSON stream into
// result lines plus the trailing summary.
func postBatch(t *testing.T, baseURL string, req BatchRequest) ([]OptimizeResponse, *BatchSummary) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(baseURL+"/v1/optimize/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d; want 200", resp.StatusCode)
	}
	var results []OptimizeResponse
	var summary *BatchSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var sum struct {
			Summary *BatchSummary `json:"summary"`
		}
		if err := json.Unmarshal(line, &sum); err == nil && sum.Summary != nil {
			summary = sum.Summary
			continue
		}
		var r OptimizeResponse
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan stream: %v", err)
	}
	if summary == nil {
		t.Fatal("stream has no summary line")
	}
	return results, summary
}

// distinctProgram builds a tiny valid program whose fingerprint differs
// per i, for tests that must defeat caching and flight deduplication.
func distinctProgram(i int) string {
	return fmt.Sprintf(`graph p%d {
  entry b0
  exit b1
  block b0 {
    x := a + %d
    y := a + %d
    goto b1
  }
  block b1 { out(x, y) }
}
`, i, i, i)
}

func TestOptimizeHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp OptimizeResponse
	hr := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Program: corpus.Source("dotprod")}, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; want 200", hr.StatusCode)
	}
	if resp.Outcome != "optimized" {
		t.Errorf("outcome = %q; want optimized", resp.Outcome)
	}
	if resp.Program == "" || !strings.Contains(resp.Program, "graph dotprod") {
		t.Errorf("response program missing or unnamed:\n%s", resp.Program)
	}
	if resp.Fingerprint == "" {
		t.Error("response has no fingerprint")
	}
	if resp.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if len(resp.Passes) == 0 {
		t.Error("response carries no pass events")
	}
}

func TestOptimizeMemoryCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := OptimizeRequest{Program: corpus.Source("gcdish")}
	var first, second OptimizeResponse
	postJSON(t, ts.URL+"/v1/optimize", req, &first)
	postJSON(t, ts.URL+"/v1/optimize", req, &second)
	if !second.CacheHit || second.CacheTier != "memory" {
		t.Errorf("second request: cacheHit=%v tier=%q; want memory hit", second.CacheHit, second.CacheTier)
	}
	if first.Program != second.Program {
		t.Error("cached program differs from computed program")
	}
}

func TestOptimizeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  OptimizeRequest
		kind string
	}{
		{"empty-program", OptimizeRequest{}, "bad-request"},
		{"parse-error", OptimizeRequest{Program: "graph g { this is not fg"}, "parse-error"},
		{"unknown-pass", OptimizeRequest{Program: distinctProgram(0), Passes: []string{"no-such-pass"}}, "bad-request"},
		{"unknown-dialect", OptimizeRequest{Program: distinctProgram(0), Dialect: "cobol"}, "parse-error"},
		{"bad-policy", OptimizeRequest{Program: distinctProgram(0), OnError: "explode"}, "bad-request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var eb errorBody
			hr := postJSON(t, ts.URL+"/v1/optimize", tc.req, &eb)
			if hr.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d; want 400", hr.StatusCode)
			}
			if eb.ErrorKind != tc.kind {
				t.Errorf("errorKind = %q; want %q (error: %s)", eb.ErrorKind, tc.kind, eb.Error)
			}
		})
	}

	t.Run("not-json", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader("}{"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d; want 400", resp.StatusCode)
		}
	})
}

func TestOptimizeBudgetExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp OptimizeResponse
	hr := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{
		Program: corpus.Source("dotprod"),
		Budget:  &BudgetSpec{MaxSolverVisits: 1},
	}, &resp)
	if hr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d; want 422", hr.StatusCode)
	}
	if resp.ErrorKind != "budget-exceeded" {
		t.Errorf("errorKind = %q; want budget-exceeded (error: %s)", resp.ErrorKind, resp.Error)
	}
	if resp.FailedPass == "" {
		t.Error("response does not name the failing pass")
	}
}

func TestOptimizeCustomPipeline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp OptimizeResponse
	hr := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{
		Program: corpus.Source("dotprod"),
		Passes:  []string{"init", "am", "flush"},
	}, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; want 200", hr.StatusCode)
	}
	var names []string
	for _, ev := range resp.Passes {
		names = append(names, ev.Pass)
	}
	if got := strings.Join(names, ","); got != "init,am,flush" {
		t.Errorf("executed passes = %s; want init,am,flush", got)
	}
}

func TestPassesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hr, body := getBody(t, ts.URL+"/v1/passes")
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; want 200", hr.StatusCode)
	}
	for _, want := range []string{"globalg", "init", "am", "flush", "default"} {
		if !strings.Contains(body, want) {
			t.Errorf("passes listing missing %q", want)
		}
	}
}

func TestHealthzAndDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	hr, body := getBody(t, ts.URL+"/healthz")
	if hr.StatusCode != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz = %d %q; want 200 ok", hr.StatusCode, body)
	}

	srv.Drain()
	hr, body = getBody(t, ts.URL+"/healthz")
	if hr.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("draining healthz = %d %q; want 503 draining", hr.StatusCode, body)
	}
	var eb errorBody
	if hr := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Program: distinctProgram(1)}, &eb); hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("optimize while draining = %d; want 503", hr.StatusCode)
	}
	if hr := postJSON(t, ts.URL+"/v1/optimize/batch", BatchRequest{}, nil); hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch while draining = %d; want 503", hr.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheDir: t.TempDir()})
	req := OptimizeRequest{Program: corpus.Source("dotprod")}
	postJSON(t, ts.URL+"/v1/optimize", req, nil)
	postJSON(t, ts.URL+"/v1/optimize", req, nil)

	hr, body := getBody(t, ts.URL+"/metrics")
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d; want 200", hr.StatusCode)
	}
	if ct := hr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q; want text/plain", ct)
	}
	for _, want := range []string{
		`amoptd_requests_total{endpoint="optimize",outcome="optimized"} 2`,
		`amoptd_cache_hits_total{tier="memory"} 1`,
		`amoptd_cache_misses_total 1`,
		`amoptd_pass_runs_total{pass="am"} 1`,
		`amoptd_store_entries 1`,
		"amoptd_request_duration_seconds_bucket",
		"amoptd_inflight_jobs 0",
		"amoptd_uptime_seconds",
		"amoptd_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestBatchStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := BatchRequest{}
	for i := 0; i < 3; i++ {
		req.Programs = append(req.Programs, BatchProgram{Program: distinctProgram(i)})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/optimize/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q; want application/x-ndjson", ct)
	}

	var results []OptimizeResponse
	var summary *BatchSummary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var sum struct {
			Summary *BatchSummary `json:"summary"`
		}
		if err := json.Unmarshal(line, &sum); err == nil && sum.Summary != nil {
			summary = sum.Summary
			continue
		}
		var r OptimizeResponse
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d result lines; want 3", len(results))
	}
	seen := map[int]bool{}
	for _, r := range results {
		if r.Outcome != "optimized" {
			t.Errorf("program %d outcome = %q (error: %s)", r.Index, r.Outcome, r.Error)
		}
		if r.Program == "" {
			t.Errorf("program %d has no optimized text", r.Index)
		}
		seen[r.Index] = true
	}
	if len(seen) != 3 {
		t.Errorf("indices not distinct: %v", seen)
	}
	if summary == nil {
		t.Fatal("stream has no summary line")
	}
	if summary.Graphs != 3 || summary.Optimized != 3 || summary.Failed != 0 {
		t.Errorf("summary = %+v; want 3 graphs, 3 optimized", summary)
	}
}

func TestBatchBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})
	t.Run("empty", func(t *testing.T) {
		var eb errorBody
		if hr := postJSON(t, ts.URL+"/v1/optimize/batch", BatchRequest{}, &eb); hr.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d; want 400", hr.StatusCode)
		}
	})
	t.Run("parse-error-aborts-before-stream", func(t *testing.T) {
		req := BatchRequest{Programs: []BatchProgram{
			{Program: distinctProgram(0)},
			{Name: "broken", Program: "graph g {"},
		}}
		var eb errorBody
		hr := postJSON(t, ts.URL+"/v1/optimize/batch", req, &eb)
		if hr.StatusCode != http.StatusBadRequest || eb.ErrorKind != "parse-error" {
			t.Errorf("status/kind = %d %q; want 400 parse-error", hr.StatusCode, eb.ErrorKind)
		}
		if !strings.Contains(eb.Error, "broken") {
			t.Errorf("error does not name the broken program: %s", eb.Error)
		}
	})
	t.Run("over-limit", func(t *testing.T) {
		req := BatchRequest{}
		for i := 0; i < 3; i++ {
			req.Programs = append(req.Programs, BatchProgram{Program: distinctProgram(i)})
		}
		if hr := postJSON(t, ts.URL+"/v1/optimize/batch", req, nil); hr.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d; want 400", hr.StatusCode)
		}
	})
}

func TestIndexPage(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hr, body := getBody(t, ts.URL+"/")
	if hr.StatusCode != http.StatusOK || !strings.Contains(body, "/v1/optimize") {
		t.Errorf("index = %d %q", hr.StatusCode, body)
	}
}

func TestDeadlineClamp(t *testing.T) {
	s, err := New(Config{DefaultDeadline: 2 * time.Second, MaxDeadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if d := s.deadline(0); d != 2*time.Second {
		t.Errorf("default deadline = %v; want 2s", d)
	}
	if d := s.deadline(1000); d != time.Second {
		t.Errorf("deadline(1000ms) = %v; want 1s", d)
	}
	if d := s.deadline(60_000); d != 5*time.Second {
		t.Errorf("deadline(60s) = %v; want clamped to 5s", d)
	}
}
