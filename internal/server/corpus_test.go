package server

// Integration test for the service contract: every program of the
// embedded corpus, round-tripped through POST /v1/optimize, must come
// back byte-identical to what the in-process library API produces. The
// daemon is a transport, not a different optimizer.

import (
	"net/http"
	"testing"

	assignmentmotion "assignmentmotion"
	"assignmentmotion/internal/corpus"
	"assignmentmotion/internal/printer"
)

func TestCorpusRoundTripMatchesInProcess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, name := range corpus.Names() {
		t.Run(name, func(t *testing.T) {
			src := corpus.Source(name)

			// In-process reference: the full global algorithm via the
			// public facade.
			g, err := assignmentmotion.Parse(src)
			if err != nil {
				t.Fatalf("parse %s: %v", name, err)
			}
			if err := assignmentmotion.Apply(g, assignmentmotion.PassGlobAlg); err != nil {
				t.Fatalf("in-process apply %s: %v", name, err)
			}
			want := printer.String(g)

			var resp OptimizeResponse
			hr := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Program: src}, &resp)
			if hr.StatusCode != http.StatusOK {
				t.Fatalf("status = %d (error: %s)", hr.StatusCode, resp.Error)
			}
			if resp.Outcome != "optimized" {
				t.Fatalf("outcome = %q (error: %s)", resp.Outcome, resp.Error)
			}
			if resp.Program != want {
				t.Errorf("service result differs from in-process optimization\n--- service ---\n%s\n--- in-process ---\n%s", resp.Program, want)
			}
		})
	}
}

// TestCorpusBatchMatchesSingles: the streamed batch endpoint and the
// single endpoint must agree program-for-program.
func TestCorpusBatchMatchesSingles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	names := corpus.Names()

	singles := make(map[string]string, len(names))
	req := BatchRequest{}
	for _, name := range names {
		var resp OptimizeResponse
		postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Program: corpus.Source(name)}, &resp)
		singles[name] = resp.Program
		req.Programs = append(req.Programs, BatchProgram{Program: corpus.Source(name)})
	}

	results, summary := postBatch(t, ts.URL, req)
	if summary.Optimized != len(names) {
		t.Fatalf("summary = %+v; want %d optimized", summary, len(names))
	}
	for _, r := range results {
		name := names[r.Index]
		if r.Program != singles[name] {
			t.Errorf("batch result for %s differs from single result", name)
		}
		if !r.CacheHit {
			t.Errorf("batch result for %s missed the cache despite a prior single request", name)
		}
	}
}
