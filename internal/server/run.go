package server

// POST /v1/run — the execution service. One program comes in (any
// dialect, including the typed "fun" front-end), gets optimized through
// the same engine path as /v1/optimize, and then BOTH the source graph
// and the optimized graph are executed on the caller's inputs by the
// compiled executor (internal/bytecode). The response carries the
// out-trace plus before/after cost counters, so a caller observes the
// paper's cost theorems directly: identical traces, ExprEvals(after) <=
// ExprEvals(before).
//
// Execution results are never cached: only the optimization step behind
// the run consults the engine's result cache (which is keyed on the
// graph alone and stays correct for any inputs). Trapped and truncated
// executions answer 422 with a typed errorKind and still carry the
// partial trace and counters produced so far.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"assignmentmotion/internal/bytecode"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/printer"
)

// defaultMaxRunSteps is the server-side ceiling on one execution's step
// budget when Config.MaxRunSteps is unset. Requests may ask for less,
// never for more.
const defaultMaxRunSteps = 1_000_000

// RunRequest is the body of POST /v1/run. Pipeline selection (Passes,
// OnError, Budget, DeadlineMs) matches /v1/optimize; the rest configures
// the two executions.
type RunRequest struct {
	Name    string `json:"name,omitempty"`
	Program string `json:"program"`
	// Dialect selects the parser: "fg" (default), "nested", "prog", or
	// "fun" (the typed front-end with functions).
	Dialect    string      `json:"dialect,omitempty"`
	Passes     []string    `json:"passes,omitempty"`
	OnError    string      `json:"onError,omitempty"`
	Budget     *BudgetSpec `json:"budget,omitempty"`
	DeadlineMs int64       `json:"deadlineMs,omitempty"`
	// Inputs binds source variables for both executions; unbound
	// variables read as 0.
	Inputs map[string]int64 `json:"inputs,omitempty"`
	// MaxSteps bounds each execution; <= 0 selects the interpreter
	// default, and the server clamps to Config.MaxRunSteps either way.
	MaxSteps int `json:"maxSteps,omitempty"`
	// TrapDivZero makes division/remainder by zero abort the execution
	// (422 errorKind "trapped") instead of yielding 0.
	TrapDivZero bool `json:"trapDivZero,omitempty"`
}

// RunCounts is the JSON form of interp.Counts.
type RunCounts struct {
	Steps           int `json:"steps"`
	Blocks          int `json:"blocks"`
	ExprEvals       int `json:"exprEvals"`
	AssignExecs     int `json:"assignExecs"`
	TempAssignExecs int `json:"tempAssignExecs"`
}

func runCounts(c interp.Counts) RunCounts {
	return RunCounts{
		Steps:           c.Steps,
		Blocks:          c.Blocks,
		ExprEvals:       c.ExprEvals,
		AssignExecs:     c.AssignExecs,
		TempAssignExecs: c.TempAssignExecs,
	}
}

// RunDeltas is after minus before for the paper's three cost measures
// (Theorems 5.2–5.4): negative numbers mean the optimizer saved work on
// this input.
type RunDeltas struct {
	ExprEvals       int `json:"exprEvals"`
	AssignExecs     int `json:"assignExecs"`
	TempAssignExecs int `json:"tempAssignExecs"`
}

// RunResponse is the body of a POST /v1/run answer.
type RunResponse struct {
	Name string `json:"name,omitempty"`
	// Outcome is "ran", "trapped", or "truncated" (of the optimized
	// execution when the two disagree on flags, which admissible motion
	// never causes).
	Outcome string `json:"outcome"`
	// Trace is the out() value sequence of the optimized execution; the
	// source execution produced the identical sequence whenever
	// TraceMatch is true.
	Trace []int64 `json:"trace"`
	// Env is the final environment of the optimized execution, restricted
	// to non-temporary variables.
	Env        map[string]int64 `json:"env,omitempty"`
	Before     RunCounts        `json:"before"`
	After      RunCounts        `json:"after"`
	Delta      RunDeltas        `json:"delta"`
	TraceMatch bool             `json:"traceMatch"`
	MaxSteps   int              `json:"maxSteps"`
	// Optimized is the optimized program text (fg encoding).
	Optimized   string `json:"optimized,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// CacheHit reports whether the optimization step (never the
	// execution) was served from the result cache.
	CacheHit  bool   `json:"cacheHit"`
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"errorKind,omitempty"`
}

// runMaxSteps clamps a request's step budget to the server's ceiling.
func (s *Server) runMaxSteps(req int) int {
	cap := s.cfg.MaxRunSteps
	if cap <= 0 {
		cap = defaultMaxRunSteps
	}
	steps := req
	if steps <= 0 {
		steps = interp.DefaultMaxSteps
	}
	if steps > cap {
		steps = cap
	}
	return steps
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	outcome := "bad-request"
	defer func() { s.met.request("run", outcome, time.Since(start)) }()

	if s.isDraining() {
		outcome = "draining"
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is draining", ErrorKind: "draining"})
		return
	}
	var req RunRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error(), ErrorKind: "bad-request"})
		return
	}
	if strings.TrimSpace(req.Program) == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty program", ErrorKind: "bad-request"})
		return
	}
	cfg, err := requestConfig(req.Passes, req.OnError, req.Budget)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), ErrorKind: "bad-request"})
		return
	}
	g, err := parseProgram(req.Dialect, req.Name, req.Program)
	if err != nil {
		outcome = "parse-error"
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), ErrorKind: "parse-error"})
		return
	}

	if err := s.adm.tryAcquire(r.Context()); err != nil {
		if errors.Is(err, errOverloaded) {
			outcome = "shed"
			s.met.shed.Add(1)
			w.Header().Set("Retry-After", s.retryAfter())
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: errOverloaded.Error(), ErrorKind: "overloaded"})
			return
		}
		outcome = "canceled"
		writeJSON(w, fault.HTTPStatus(err), errorBody{Error: err.Error(), ErrorKind: fault.Name(err)})
		return
	}
	defer s.adm.release()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.DeadlineMs))
	defer cancel()
	res := s.engineFor(cfg).Optimize(ctx, g)
	if res.Err != nil {
		outcome = string(res.Outcome)
		writeJSON(w, fault.HTTPStatus(res.Err), errorBody{Error: res.Err.Error(), ErrorKind: fault.Name(res.Err)})
		return
	}

	init := make(map[ir.Var]int64, len(req.Inputs))
	for name, v := range req.Inputs {
		init[ir.Var(name)] = v
	}
	maxSteps := s.runMaxSteps(req.MaxSteps)
	opts := interp.Options{TrapOnDivZero: req.TrapDivZero}

	before, err := bytecode.Execute(g, init, maxSteps, opts)
	if err != nil {
		outcome = "internal-error"
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), ErrorKind: "internal-error"})
		return
	}
	after, err := bytecode.Execute(res.Graph, init, maxSteps, opts)
	if err != nil {
		outcome = "internal-error"
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), ErrorKind: "internal-error"})
		return
	}

	resp := RunResponse{
		Name:        g.Name,
		Outcome:     "ran",
		Trace:       after.Trace,
		Env:         visibleEnv(after.Env),
		Before:      runCounts(before.Counts),
		After:       runCounts(after.Counts),
		MaxSteps:    maxSteps,
		Optimized:   printer.String(res.Graph),
		Fingerprint: res.Fingerprint,
		CacheHit:    res.CacheHit,
	}
	resp.Delta = RunDeltas{
		ExprEvals:       resp.After.ExprEvals - resp.Before.ExprEvals,
		AssignExecs:     resp.After.AssignExecs - resp.Before.AssignExecs,
		TempAssignExecs: resp.After.TempAssignExecs - resp.Before.TempAssignExecs,
	}
	resp.TraceMatch = traceEqual(before.Trace, after.Trace)
	if resp.Trace == nil {
		resp.Trace = []int64{}
	}

	switch {
	case before.Trapped || after.Trapped:
		outcome = "trapped"
		resp.Outcome = "trapped"
		resp.Error = "execution trapped on division or remainder by zero"
		resp.ErrorKind = "trapped"
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	case before.Truncated || after.Truncated:
		outcome = "truncated"
		resp.Outcome = "truncated"
		resp.Error = fmt.Sprintf("execution exceeded the %d-step budget", maxSteps)
		resp.ErrorKind = "truncated"
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	case !resp.TraceMatch:
		// Admissible motion preserves traces; a mismatch is an optimizer
		// bug and must never masquerade as a successful run.
		outcome = "trace-mismatch"
		resp.Outcome = "trace-mismatch"
		resp.Error = "optimized program produced a different trace than the source program"
		resp.ErrorKind = "trace-mismatch"
		writeJSON(w, http.StatusInternalServerError, resp)
	default:
		outcome = "ran"
		writeJSON(w, http.StatusOK, resp)
	}
}

// visibleEnv strips compiler temporaries from a final environment and
// re-keys it for JSON.
func visibleEnv(env map[ir.Var]int64) map[string]int64 {
	out := make(map[string]int64, len(env))
	for v, x := range env {
		if ir.IsTempName(v) {
			continue
		}
		out[string(v)] = x
	}
	return out
}

func traceEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
