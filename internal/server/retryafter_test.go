package server

import (
	"context"
	"net/http"
	"testing"
	"time"
)

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		name    string
		queued  int64
		workers int
		mean    float64
		want    int
	}{
		{"idle defaults to the floor", 0, 4, 0, 1},
		{"fast service stays at the floor", 3, 4, 0.01, 1},
		{"queue scales the estimate", 9, 1, 1.0, 10},
		{"workers divide the queue", 9, 5, 1.0, 2},
		{"slow service multiplies", 2, 1, 10.0, 30},
		{"clamped to a minute", 100, 1, 10.0, 60},
		{"degenerate workers treated as one", 1, 0, 1.0, 2},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.queued, c.workers, c.mean); got != c.want {
			t.Errorf("%s: retryAfterSeconds(%d, %d, %g) = %d, want %d",
				c.name, c.queued, c.workers, c.mean, got, c.want)
		}
	}
}

// A shed request's Retry-After must reflect the actual load: deep queues
// of slow jobs push the hint up, an idle server keeps it at the floor.
func TestRetryAfterHeaderScalesWithLoad(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	// Occupy the single worker slot and fill the wait queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := srv.adm.tryAcquire(ctx); err != nil {
		t.Fatalf("tryAcquire: %v", err)
	}
	defer srv.adm.release()
	for i := 0; i < 2; i++ {
		go srv.adm.acquire(ctx) //nolint:errcheck // released by cancel
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.adm.queued() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	shed := func() string {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Program: distinctProgram(0)}, nil)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		return resp.Header.Get("Retry-After")
	}

	// No latency observed yet: the default mean keeps the hint at the
	// floor even with a full queue.
	if got := shed(); got != "1" {
		t.Fatalf("idle-history Retry-After = %q, want \"1\"", got)
	}

	// Teach the histogram that requests take ~10s: three queued jobs
	// behind one worker now project 30s of wait.
	for i := 0; i < 50; i++ {
		srv.met.request("optimize", "optimized", 10*time.Second)
	}
	got := shed()
	if got != "30" {
		t.Fatalf("loaded Retry-After = %q, want \"30\" (mean 10s x 3 jobs / 1 worker)", got)
	}
}
