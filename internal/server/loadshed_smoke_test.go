package server

// Sustained load-shed smoke, CI's overload drill: hammer the daemon with
// more concurrency than the worker budget for LOADSHED_SMOKE_SECONDS and
// assert that (a) admitted requests keep succeeding, (b) the excess is
// shed with 429 — never an error, never a hang — and (c) when the
// pressure stops, every goroutine drains. Skipped unless the env var is
// set, so local `go test ./...` stays fast.

import (
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLoadShedSmoke(t *testing.T) {
	secs := os.Getenv("LOADSHED_SMOKE_SECONDS")
	if secs == "" {
		t.Skip("set LOADSHED_SMOKE_SECONDS to run the load-shed smoke")
	}
	dur, err := strconv.Atoi(secs)
	if err != nil || dur <= 0 {
		t.Fatalf("bad LOADSHED_SMOKE_SECONDS=%q", secs)
	}

	srv, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2})
	before := runtime.NumGoroutine()

	// Concurrency well past workers+queue, every program unique so
	// nothing is served from cache — each admitted request does real
	// work and each rejected one proves the shed path.
	const clients = 16
	deadline := time.Now().Add(time.Duration(dur) * time.Second)
	var ok200, shed429, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
					postBody(t, OptimizeRequest{Program: distinctProgram(c*10_000_000 + i)}))
				if err != nil {
					other.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					shed429.Add(1)
				default:
					other.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	t.Logf("load-shed smoke: %d ok, %d shed, %d other over %ds with %d clients",
		ok200.Load(), shed429.Load(), other.Load(), dur, clients)
	if ok200.Load() == 0 {
		t.Error("no request succeeded under load")
	}
	if shed429.Load() == 0 {
		t.Error("no request was shed despite concurrency > worker budget")
	}
	if other.Load() > 0 {
		t.Errorf("%d requests answered something other than 200/429", other.Load())
	}
	if got := srv.met.shed.Load(); got != shed429.Load() {
		t.Errorf("shed metric = %d; clients saw %d 429s", got, shed429.Load())
	}

	// Zero goroutine leaks once the burst drains. Idle keep-alive
	// connections pin one server goroutine each, so shut them first —
	// what's left is what the daemon actually leaked.
	waitFor(t, "goroutines to drain after the burst", func() bool {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		return runtime.NumGoroutine() <= before+5
	})
}
