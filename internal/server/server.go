// Package server exposes the optimization pipeline as a service: the
// HTTP/JSON subsystem behind the amoptd daemon.
//
// Endpoints:
//
//	POST /v1/optimize        one program in, optimized program out; the
//	                         request selects the pass pipeline, the
//	                         on-error recovery policy, a fault.Budget,
//	                         and a deadline
//	POST /v1/optimize/batch  many programs in, NDJSON results streamed
//	                         out in completion order, fanned out through
//	                         internal/engine under the shared worker
//	                         budget
//	POST /v1/run             optimize one program AND execute both the
//	                         source and the optimized graph on caller
//	                         inputs via the compiled executor, answering
//	                         the out-trace plus before/after cost deltas
//	GET  /v1/passes          pass registry introspection
//	GET  /healthz            liveness + drain state
//	GET  /metrics            Prometheus text format
//
// Requests are served from a two-tier result cache: every engine's
// in-memory fingerprint cache fronts one shared persistent
// internal/cachestore directory, so a restarted daemon answers
// previously seen programs without running a single pass. Admission
// control bounds concurrency (worker semaphore) and queueing (depth
// limit, shedding with 429 + Retry-After); SIGTERM drains gracefully —
// stop accepting, finish in-flight, flush the cache index.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"assignmentmotion/internal/cachestore"
	"assignmentmotion/internal/cluster"
	"assignmentmotion/internal/engine"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/pass"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/typeinference"
)

// Config tunes one Server.
type Config struct {
	// Workers bounds concurrently running optimization jobs (across all
	// requests, single and batch). <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds jobs waiting for a worker slot; a full queue
	// sheds single requests with 429. <= 0 selects 4 * Workers.
	QueueDepth int
	// CacheDir, when non-empty, roots the persistent result store. Empty
	// runs memory-only (results do not survive a restart).
	CacheDir string
	// CacheMaxBytes caps the persistent store (0 = cachestore default,
	// < 0 = uncapped).
	CacheMaxBytes int64
	// CacheSize is the in-memory entry bound per pipeline configuration
	// (0 = engine default).
	CacheSize int
	// DefaultDeadline applies when a request sets none; MaxDeadline caps
	// whatever the request asks for. Zero values select 10s and 60s.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxBodyBytes bounds request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// MaxBatch bounds programs per batch request (0 = 1024).
	MaxBatch int
	// MaxRunSteps caps the per-execution step budget of POST /v1/run;
	// requests asking for more are clamped. <= 0 selects 1,000,000.
	MaxRunSteps int
	// Inject is the test-only fault-injection seam, threaded through to
	// engine.Options.Inject. Production callers leave it nil.
	Inject func(index int, p pass.Pass) pass.Pass
	// SolverWorkers bounds intra-graph parallel dataflow solving per job
	// (engine.Options.SolverWorkers). <= 0 divides GOMAXPROCS by Workers
	// so job-level and region-level concurrency together stay near the
	// core count; 1 forces serial solves.
	SolverWorkers int
	// Incremental enables the region-granular cache tier
	// (engine.Options.Incremental): default-pipeline jobs whose graph
	// differs from a recorded predecessor in one region's interior are
	// replayed region-by-region instead of re-optimized, certified
	// byte-identical to the cold run.
	Incremental bool
	// Cluster, when non-nil, joins this daemon to an amoptd cluster:
	// jobs route to peers by graph-fingerprint consistent hashing with
	// health checking, retries, and hedged forwarding, and engine cache
	// misses consult the owning peer's store. See internal/cluster.
	Cluster *cluster.Config
	// NoLocalFallback refuses to compute jobs this node does not own when
	// no peer is usable: such requests answer 503 peer-unavailable
	// instead of silently degrading to single-node behavior. The zero
	// value (fallback enabled) keeps a degraded cluster fully available.
	NoLocalFallback bool
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.SolverWorkers <= 0 {
		c.SolverWorkers = runtime.GOMAXPROCS(0) / c.Workers
		if c.SolverWorkers < 1 {
			c.SolverWorkers = 1
		}
	}
}

// maxEngineConfigs bounds the memoized per-configuration engines. Each
// distinct (passes, recovery, budget) combination gets its own engine
// (and in-memory cache tier); the persistent tier is shared by all.
const maxEngineConfigs = 32

// engineConfig is the memoization key for one pipeline configuration.
type engineConfig struct {
	pipeline string // comma-joined pass names; "" = default global algorithm
	recovery pass.RecoveryPolicy
	budget   fault.Budget
}

// Server is the daemon's HTTP subsystem. Construct with New.
type Server struct {
	cfg   Config
	store *cachestore.Store // nil when CacheDir is empty
	met   *metrics
	adm   *admission

	node     *cluster.Node // nil outside cluster mode
	stopNode sync.Once

	drainMu  sync.Mutex
	draining bool

	mu      sync.Mutex
	engines map[engineConfig]*engine.Engine
}

// New builds a Server, opening (or creating) the persistent store when
// cfg.CacheDir is set.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	var store *cachestore.Store
	if cfg.CacheDir != "" {
		var err error
		store, err = cachestore.Open(cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			return nil, err
		}
	}
	var node *cluster.Node
	if cfg.Cluster != nil {
		var err error
		node, err = cluster.New(*cfg.Cluster)
		if err != nil {
			if store != nil {
				store.Close()
			}
			return nil, err
		}
		node.Start()
	}
	return &Server{
		cfg:     cfg,
		store:   store,
		met:     newMetrics(store),
		adm:     newAdmission(cfg.Workers, cfg.QueueDepth),
		node:    node,
		engines: map[engineConfig]*engine.Engine{},
	}, nil
}

// Drain flips the server into drain mode: /healthz turns 503 (so load
// balancers stop routing here) and new optimization requests are
// rejected; in-flight requests finish normally. Call before
// http.Server.Shutdown.
func (s *Server) Drain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
}

func (s *Server) isDraining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// Close stops the cluster health probers and flushes the persistent
// store's index. Call after the HTTP server has fully shut down.
func (s *Server) Close() error {
	if s.node != nil {
		s.stopNode.Do(s.node.Stop)
	}
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// Store exposes the persistent tier (nil when persistence is off); the
// daemon's tests use it to assert cache cleanliness.
func (s *Server) Store() *cachestore.Store { return s.store }

// engineFor returns (memoizing) the engine for one pipeline
// configuration. All engines share the persistent backend and the
// metrics hooks.
func (s *Server) engineFor(cfg engineConfig) *engine.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.engines[cfg]; ok {
		return e
	}
	if len(s.engines) >= maxEngineConfigs {
		for k := range s.engines { // drop one; its persistent entries survive
			delete(s.engines, k)
			break
		}
	}
	opts := engine.Options{
		Parallelism:   1, // concurrency is the server's worker budget, not the engine pool
		SolverWorkers: s.cfg.SolverWorkers,
		CacheSize:     s.cfg.CacheSize,
		Recovery:      cfg.recovery,
		Budget:        cfg.budget,
		Inject:        s.cfg.Inject,
		Incremental:   s.cfg.Incremental,
		Hook:          func(_ string, ev pass.Event) { s.met.passEvent(ev) },
		OutcomeHook: func(r engine.GraphResult) {
			if r.Err == nil {
				s.met.cacheOutcome(r.CacheHit, r.CacheTier)
				if r.CacheTier == "region" {
					s.met.regionOutcome(r.RegionsReused, r.RegionsRecomputed)
				}
			}
		},
	}
	if cfg.pipeline != "" {
		opts.Passes = strings.Split(cfg.pipeline, ",")
	}
	switch {
	case s.node != nil:
		// Cluster mode: cache misses consult the key's owning peer before
		// computing. The local tier underneath is the persistent store, or
		// a null store on memory-only nodes (which then still read the
		// cluster's caches while persisting nothing).
		var local cluster.Backend = nullStore{}
		if s.store != nil {
			local = s.store
		}
		opts.Backend = s.node.RemoteBackend(local)
	case s.store != nil:
		opts.Backend = s.store
	}
	e := engine.New(opts)
	s.engines[cfg] = e
	return e
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/optimize/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/passes", s.handlePasses)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	if s.node != nil {
		mux.HandleFunc("GET "+cluster.CachePath, s.handleClusterCache)
	}
	return mux
}

// BudgetSpec is the request form of fault.Budget.
type BudgetSpec struct {
	MaxPassWallMs   int64 `json:"maxPassWallMs,omitempty"`
	MaxSolverVisits int   `json:"maxSolverVisits,omitempty"`
	MaxAMIterations int   `json:"maxAmIterations,omitempty"`
}

func (b *BudgetSpec) budget() fault.Budget {
	if b == nil {
		return fault.Budget{}
	}
	return fault.Budget{
		MaxPassWall:     time.Duration(b.MaxPassWallMs) * time.Millisecond,
		MaxSolverVisits: b.MaxSolverVisits,
		MaxAMIterations: b.MaxAMIterations,
	}
}

// OptimizeRequest is the body of POST /v1/optimize.
type OptimizeRequest struct {
	// Name labels the program in responses and logs (optional).
	Name string `json:"name,omitempty"`
	// Program is the source text, in the dialect below.
	Program string `json:"program"`
	// Dialect selects the parser: "fg" (default), "nested" (§6 nested
	// expressions), "prog" (the structured mini-language), or "fun" (the
	// typed front-end with functions).
	Dialect string `json:"dialect,omitempty"`
	// Passes names the pipeline; empty (or ["globalg"]) selects the full
	// global algorithm.
	Passes []string `json:"passes,omitempty"`
	// OnError selects the recovery policy: "fail" (default), "rollback",
	// or "skip".
	OnError string `json:"onError,omitempty"`
	// Budget caps per-pass resources; violations answer 422.
	Budget *BudgetSpec `json:"budget,omitempty"`
	// DeadlineMs bounds the whole request (capped by the server's
	// MaxDeadline); expiry answers 504.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
}

// OptimizeResponse is the body of a POST /v1/optimize answer (and, per
// line, of a batch stream).
type OptimizeResponse struct {
	Index       int    `json:"index,omitempty"`
	Name        string `json:"name,omitempty"`
	Outcome     string `json:"outcome"`
	Program     string `json:"program,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	CacheHit    bool   `json:"cacheHit"`
	CacheTier   string `json:"cacheTier,omitempty"`
	// Region accounting of a "region"-tier hit: how many regions the
	// graph decomposed into, how many were stitched from the recorded
	// predecessor, and how many were re-optimized live.
	RegionsTotal      int `json:"regionsTotal,omitempty"`
	RegionsReused     int `json:"regionsReused,omitempty"`
	RegionsRecomputed int `json:"regionsRecomputed,omitempty"`

	AMIterations int          `json:"amIterations,omitempty"`
	Wall         string       `json:"wall,omitempty"`
	Passes       []pass.Event `json:"passes,omitempty"`
	Failures     []string     `json:"failures,omitempty"`
	Error        string       `json:"error,omitempty"`
	ErrorKind    string       `json:"errorKind,omitempty"`
	FailedPass   string       `json:"failedPass,omitempty"`
}

// errorBody is the JSON shape of request-level failures (bad JSON, parse
// errors, overload, drain).
type errorBody struct {
	Error     string `json:"error"`
	ErrorKind string `json:"errorKind,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// parseProgram parses one program in the requested dialect.
func parseProgram(dialect, name, src string) (*ir.Graph, error) {
	var g *ir.Graph
	var err error
	switch dialect {
	case "", "fg":
		g, err = parse.Parse(src)
	case "nested":
		g, err = parse.ParseNested(src)
	case "prog":
		g, err = parse.ParseProgram(src)
	case "fun":
		g, _, err = typeinference.Compile(src)
	default:
		return nil, fmt.Errorf("unknown dialect %q (want fg, nested, prog, or fun)", dialect)
	}
	if err != nil {
		return nil, err
	}
	if name != "" {
		g.Name = name
	}
	return g, nil
}

// requestConfig resolves the pipeline configuration of a request:
// registry-validated passes, recovery policy, budget. A nil error means
// the configuration is servable.
func requestConfig(passes []string, onError string, budget *BudgetSpec) (engineConfig, error) {
	names := make([]string, 0, len(passes))
	for _, p := range passes {
		p = strings.TrimSpace(p)
		if p == "" || p == "none" {
			continue
		}
		names = append(names, p)
	}
	if len(names) == 1 && names[0] == "globalg" {
		names = nil // the engine's default pipeline IS the global algorithm
	}
	if len(names) > 0 {
		if _, err := pass.Resolve(names...); err != nil {
			return engineConfig{}, err
		}
	}
	policy := pass.Fail
	if onError != "" {
		var err error
		policy, err = pass.ParseRecoveryPolicy(onError)
		if err != nil {
			return engineConfig{}, err
		}
	}
	return engineConfig{
		pipeline: strings.Join(names, ","),
		recovery: policy,
		budget:   budget.budget(),
	}, nil
}

// deadline clamps the request's deadline to the server's bounds.
func (s *Server) deadline(ms int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// respond converts one engine result into the response shape.
func respond(idx int, name string, r engine.GraphResult) OptimizeResponse {
	resp := OptimizeResponse{
		Index:             idx,
		Name:              name,
		Outcome:           string(r.Outcome),
		Fingerprint:       r.Fingerprint,
		CacheHit:          r.CacheHit,
		CacheTier:         r.CacheTier,
		RegionsTotal:      r.RegionsTotal,
		RegionsReused:     r.RegionsReused,
		RegionsRecomputed: r.RegionsRecomputed,
		AMIterations:      r.Result.AM.Iterations,
		Wall:              r.Timings.Total.String(),
		Passes:            r.Passes,
	}
	for _, f := range r.Failures {
		resp.Failures = append(resp.Failures, f.Error())
	}
	if r.Err != nil {
		resp.Error = r.Err.Error()
		resp.ErrorKind = fault.Name(r.Err)
		if p, _, ok := fault.PassOf(r.Err); ok {
			resp.FailedPass = p
		}
		return resp
	}
	resp.Program = printer.String(r.Graph)
	return resp
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	outcome := "bad-request"
	defer func() { s.met.request("optimize", outcome, time.Since(start)) }()

	if s.isDraining() {
		outcome = "draining"
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is draining", ErrorKind: "draining"})
		return
	}
	var req OptimizeRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error(), ErrorKind: "bad-request"})
		return
	}
	if strings.TrimSpace(req.Program) == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty program", ErrorKind: "bad-request"})
		return
	}
	cfg, err := requestConfig(req.Passes, req.OnError, req.Budget)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), ErrorKind: "bad-request"})
		return
	}
	g, err := parseProgram(req.Dialect, req.Name, req.Program)
	if err != nil {
		outcome = "parse-error"
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), ErrorKind: "parse-error"})
		return
	}

	if served, out := s.maybeForwardOptimize(w, r, &req, g); served {
		outcome = out
		return
	}

	if err := s.adm.tryAcquire(r.Context()); err != nil {
		if errors.Is(err, errOverloaded) {
			outcome = "shed"
			s.met.shed.Add(1)
			w.Header().Set("Retry-After", s.retryAfter())
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: errOverloaded.Error(), ErrorKind: "overloaded"})
			return
		}
		outcome = "canceled"
		writeJSON(w, fault.HTTPStatus(err), errorBody{Error: err.Error(), ErrorKind: fault.Name(err)})
		return
	}
	defer s.adm.release()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.DeadlineMs))
	defer cancel()
	res := s.engineFor(cfg).Optimize(ctx, g)
	outcome = string(res.Outcome)
	resp := respond(0, g.Name, res)
	writeJSON(w, fault.HTTPStatus(res.Err), resp)
}

// BatchProgram is one named program of a batch request.
type BatchProgram struct {
	Name    string `json:"name,omitempty"`
	Program string `json:"program"`
}

// BatchRequest is the body of POST /v1/optimize/batch. Pipeline,
// recovery, budget, and deadline are shared by every program of the
// batch.
type BatchRequest struct {
	Programs   []BatchProgram `json:"programs"`
	Dialect    string         `json:"dialect,omitempty"`
	Passes     []string       `json:"passes,omitempty"`
	OnError    string         `json:"onError,omitempty"`
	Budget     *BudgetSpec    `json:"budget,omitempty"`
	DeadlineMs int64          `json:"deadlineMs,omitempty"`
}

// BatchSummary is the final NDJSON line of a batch stream.
type BatchSummary struct {
	Graphs      int `json:"graphs"`
	Optimized   int `json:"optimized"`
	Degraded    int `json:"degraded"`
	Failed      int `json:"failed"`
	CacheHits   int `json:"cacheHits"`
	CacheMisses int `json:"cacheMisses"`
	// Region-tier accounting across the batch: hits served by warm
	// replay, and the regions they reused versus re-optimized.
	RegionHits        int `json:"regionHits,omitempty"`
	RegionsReused     int `json:"regionsReused,omitempty"`
	RegionsRecomputed int `json:"regionsRecomputed,omitempty"`

	Wall string `json:"wall"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	outcome := "bad-request"
	defer func() { s.met.request("batch", outcome, time.Since(start)) }()

	if s.isDraining() {
		outcome = "draining"
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is draining", ErrorKind: "draining"})
		return
	}
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error(), ErrorKind: "bad-request"})
		return
	}
	if len(req.Programs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch", ErrorKind: "bad-request"})
		return
	}
	if len(req.Programs) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error:     fmt.Sprintf("batch of %d exceeds the %d-program limit", len(req.Programs), s.cfg.MaxBatch),
			ErrorKind: "bad-request",
		})
		return
	}
	cfg, err := requestConfig(req.Passes, req.OnError, req.Budget)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), ErrorKind: "bad-request"})
		return
	}
	graphs := make([]*ir.Graph, len(req.Programs))
	for i, p := range req.Programs {
		g, err := parseProgram(req.Dialect, p.Name, p.Program)
		if err != nil {
			outcome = "parse-error"
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error:     fmt.Sprintf("program %d (%s): %v", i, p.Name, err),
				ErrorKind: "parse-error",
			})
			return
		}
		graphs[i] = g
	}

	// One up-front shed check, before the stream starts: once bytes are
	// on the wire a 429 is impossible, so an overloaded server rejects
	// the whole batch here and per-graph jobs below wait (bounded by the
	// deadline) instead of shedding.
	if s.adm.overloaded() {
		outcome = "shed"
		s.met.shed.Add(1)
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: errOverloaded.Error(), ErrorKind: "overloaded"})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.DeadlineMs))
	defer cancel()
	eng := s.engineFor(cfg)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	results := make(chan OptimizeResponse)
	var wg sync.WaitGroup
	alreadyForwarded := r.Header.Get(cluster.ForwardedHeader) != ""
	for i := range graphs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if !alreadyForwarded {
				// Cluster mode: jobs owned by a healthy peer forward there
				// (consuming that peer's worker budget, not ours) and their
				// response lines drop into the same stream. A job whose peer
				// dies mid-batch falls through to the local path below — the
				// mid-batch redistribution that keeps one response flowing.
				if resp, served := s.forwardBatchJob(ctx, &req, i, graphs[i]); served {
					results <- resp
					return
				}
			}
			if err := s.adm.acquire(ctx); err != nil {
				results <- respond(i, graphs[i].Name, engine.GraphResult{
					Index: i, Outcome: engine.OutcomeFailed,
					Err: &fault.CanceledError{Err: err},
				})
				return
			}
			defer s.adm.release()
			s.met.inflight.Add(1)
			defer s.met.inflight.Add(-1)
			results <- respond(i, graphs[i].Name, eng.Optimize(ctx, graphs[i]))
		}(i)
	}
	go func() { wg.Wait(); close(results) }()

	summary := BatchSummary{Graphs: len(graphs)}
	enc := json.NewEncoder(w)
	for resp := range results {
		switch resp.Outcome {
		case string(engine.OutcomeOptimized):
			summary.Optimized++
		case string(engine.OutcomeDegraded):
			summary.Degraded++
		default:
			summary.Failed++
		}
		if resp.CacheHit {
			summary.CacheHits++
			if resp.CacheTier == "region" {
				summary.RegionHits++
				summary.RegionsReused += resp.RegionsReused
				summary.RegionsRecomputed += resp.RegionsRecomputed
			}
		} else if resp.Error == "" {
			summary.CacheMisses++
		}
		resp.Passes = nil // keep stream lines compact; singles carry events
		enc.Encode(resp)
		if flusher != nil {
			flusher.Flush()
		}
	}
	summary.Wall = time.Since(start).String()
	enc.Encode(struct {
		Summary BatchSummary `json:"summary"`
	}{summary})
	if flusher != nil {
		flusher.Flush()
	}
	switch {
	case summary.Failed > 0:
		outcome = "failed"
	case summary.Degraded > 0:
		outcome = "degraded"
	default:
		outcome = "optimized"
	}
}

// handlePasses serves the pass registry: names, descriptions, and paper
// anchors, plus the default pipeline.
func (s *Server) handlePasses(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Default []string    `json:"default"`
		Passes  []pass.Info `json:"passes"`
	}{
		Default: []string{"init", "am", "flush"},
		Passes:  pass.Infos(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status  string `json:"status"`
		Uptime  string `json:"uptime"`
		Workers int    `json:"workers"`
		Queue   int64  `json:"queued"`
		Entries int    `json:"storeEntries,omitempty"`
	}
	h := health{
		Status:  "ok",
		Uptime:  time.Since(s.met.start).Round(time.Millisecond).String(),
		Workers: s.cfg.Workers,
		Queue:   s.adm.queued(),
	}
	if s.store != nil {
		h.Entries = s.store.Len()
	}
	status := http.StatusOK
	if s.isDraining() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.queued.Store(s.adm.queued())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w)
	if s.node != nil {
		s.node.WriteMetrics(w)
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `amoptd — assignment-motion optimization service

POST /v1/optimize        {"program": "graph g { ... }", "passes": [...], "onError": "fail|rollback|skip", "budget": {...}, "deadlineMs": N}
POST /v1/optimize/batch  {"programs": [{"name": ..., "program": ...}, ...]} -> NDJSON stream
POST /v1/run             {"program": ..., "dialect": "fg|nested|prog|fun", "inputs": {"x": 1}, "maxSteps": N, "trapDivZero": bool} -> trace + before/after cost counters
GET  /v1/passes          pass registry
GET  /healthz            liveness
GET  /metrics            Prometheus text format
`)
}
