package server

// Admission control: a semaphore-bounded worker budget with a queue-depth
// limit. The daemon never queues unboundedly — once the wait queue is
// full, single-program requests are shed immediately with 429 +
// Retry-After, which keeps latency bounded for the requests that ARE
// admitted and tells well-behaved clients exactly what to do. Batch
// requests pass one up-front depth check and then share the same worker
// semaphore per graph, so a batch can never starve singles of more than
// the slots it is actively using.

import (
	"context"
	"errors"
	"math"
	"strconv"
	"sync/atomic"
)

// errOverloaded is the shed signal: the wait queue is full.
var errOverloaded = errors.New("server overloaded: worker queue full")

// admission is the worker-budget semaphore plus queue accounting.
type admission struct {
	sem        chan struct{} // capacity = worker budget
	queueLimit int64         // max goroutines blocked waiting for a slot
	waiting    atomic.Int64
}

func newAdmission(workers, queueDepth int) *admission {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{sem: make(chan struct{}, workers), queueLimit: int64(queueDepth)}
}

// tryAcquire takes a worker slot, waiting in the bounded queue if all
// slots are busy. It returns errOverloaded without waiting when the
// queue is already full, and ctx.Err() if the caller's context expires
// while queued.
func (a *admission) tryAcquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	if w := a.waiting.Add(1); w > a.queueLimit {
		a.waiting.Add(-1)
		return errOverloaded
	}
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// acquire takes a worker slot, waiting as long as ctx allows. Used by the
// per-graph jobs of an already-admitted batch, which must not be shed
// mid-stream.
func (a *admission) acquire(ctx context.Context) error {
	a.waiting.Add(1)
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a worker slot.
func (a *admission) release() { <-a.sem }

// overloaded reports whether the wait queue is full right now — the
// up-front shed check for batch requests, taken before the response
// stream starts (a 429 cannot be sent once bytes are on the wire).
func (a *admission) overloaded() bool {
	return a.waiting.Load() >= a.queueLimit && a.queueLimit > 0 || a.queueLimit == 0 && len(a.sem) == cap(a.sem)
}

// queued reports the current wait-queue depth (for the metrics gauge).
func (a *admission) queued() int64 { return a.waiting.Load() }

// defaultMeanServiceSeconds seeds the Retry-After estimate before any
// request has completed (optimizations typically land well under this).
const defaultMeanServiceSeconds = 0.05

// retryAfterSeconds estimates how long a shed client should wait: the
// work ahead of it (the queue plus its own job) divided by the service
// rate (workers per mean service time), clamped to [1, 60] seconds. A
// lightly loaded server says "1"; a server with a deep queue of slow
// jobs tells clients to stay away proportionally longer instead of
// inviting an immediate synchronized retry storm.
func retryAfterSeconds(queued int64, workers int, meanServiceSeconds float64) int {
	if meanServiceSeconds <= 0 {
		meanServiceSeconds = defaultMeanServiceSeconds
	}
	if workers < 1 {
		workers = 1
	}
	secs := int(math.Ceil(meanServiceSeconds * float64(queued+1) / float64(workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// retryAfter renders the Retry-After header value from the server's
// current queue depth and observed mean service time.
func (s *Server) retryAfter() string {
	return strconv.Itoa(retryAfterSeconds(s.adm.queued(), s.cfg.Workers, s.met.meanServiceSeconds()))
}
