package server

// Cluster glue: how the HTTP handlers use internal/cluster.
//
// Jobs route by graph fingerprint. When the route names a healthy peer,
// the request forwards there (with retries and hedging inside
// cluster.Forward) and the peer's response is relayed — the forwarded
// request carries the X-Amoptd-Forwarded header, so the receiving node
// always computes locally and forwards never chain. When the route says
// local, or every candidate peer is unusable and local fallback is
// allowed, the job runs through the ordinary single-node path. With
// NoLocalFallback set, unroutable jobs answer typed 503/502 through the
// fault taxonomy instead.
//
// Nothing in this file writes to any cache: forwarded responses are
// relayed verbatim and peer errors surface as fault.PeerError, so the
// degraded-never-cached invariant reduces to each node's own engine
// discipline.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"assignmentmotion/internal/cluster"
	"assignmentmotion/internal/engine"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/ir"
)

// nullStore is the local tier of memory-only cluster nodes: never hits,
// never stores. The node still reads its peers' caches through the
// remote tier wrapped around it.
type nullStore struct{}

func (nullStore) Get(string) ([]byte, bool) { return nil, false }
func (nullStore) Put(string, []byte) error  { return nil }

// Node exposes the cluster runtime (nil outside cluster mode); tests use
// it to reach routing and metrics.
func (s *Server) Node() *cluster.Node { return s.node }

// noPeerErr is the typed failure for "the cluster owns this job but no
// member of the cluster can take it".
func noPeerErr() error {
	return &fault.PeerError{
		Unreachable: true,
		Err:         errors.New("no healthy peer owns this graph and local fallback is disabled"),
	}
}

// maybeForwardOptimize routes one single-optimize request. It reports
// served=true when it wrote the response (forwarded, or answered a typed
// peer failure); served=false means the caller runs the job locally —
// either this node owns it, or its peer is gone and the job redistributes
// here.
func (s *Server) maybeForwardOptimize(w http.ResponseWriter, r *http.Request, req *OptimizeRequest, g *ir.Graph) (served bool, outcome string) {
	if s.node == nil || r.Header.Get(cluster.ForwardedHeader) != "" {
		return false, ""
	}
	route := s.node.Route(g.Fingerprint().String())
	if route.Local {
		return false, ""
	}
	if len(route.Peers) == 0 {
		if !s.cfg.NoLocalFallback {
			return false, ""
		}
		err := noPeerErr()
		writeJSON(w, fault.HTTPStatus(err), errorBody{Error: err.Error(), ErrorKind: fault.Name(err)})
		return true, fault.Name(err)
	}

	// The forwarded request carries the already-clamped deadline, so the
	// peer cannot stretch the caller's budget, and the forward itself is
	// bounded by the same budget.
	d := s.deadline(req.DeadlineMs)
	fwd := *req
	fwd.DeadlineMs = d.Milliseconds()
	body, err := json.Marshal(fwd)
	if err != nil {
		return false, ""
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	res, ferr := s.node.Forward(ctx, route.Peers, "/v1/optimize", body)
	if ferr != nil {
		if s.cfg.NoLocalFallback {
			writeJSON(w, fault.HTTPStatus(ferr), errorBody{Error: ferr.Error(), ErrorKind: fault.Name(ferr)})
			return true, fault.Name(ferr)
		}
		// The owner and every replica are gone: the job redistributes to
		// this node's own engine.
		s.node.Metrics().Redistributed()
		return false, ""
	}
	ct := res.ContentType
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(res.Status)
	w.Write(res.Body)
	return true, "forwarded"
}

// forwardBatchJob routes one batch job as a single-optimize request to
// its owning peer and folds the answer back into the stream's response
// shape. served=false sends the job down the local compute path — the
// caller's goroutine, which is exactly where a job lands when its peer
// dies mid-batch (counted as a redistribution).
func (s *Server) forwardBatchJob(ctx context.Context, req *BatchRequest, i int, g *ir.Graph) (OptimizeResponse, bool) {
	if s.node == nil {
		return OptimizeResponse{}, false
	}
	route := s.node.Route(g.Fingerprint().String())
	if route.Local {
		return OptimizeResponse{}, false
	}

	// A forwarding failure either redistributes the job to the local
	// engine (default) or, with NoLocalFallback, becomes this job's typed
	// failure line in the stream.
	failed := func(err error) (OptimizeResponse, bool) {
		if !s.cfg.NoLocalFallback {
			s.node.Metrics().Redistributed()
			return OptimizeResponse{}, false
		}
		return OptimizeResponse{
			Index:     i,
			Name:      g.Name,
			Outcome:   string(engine.OutcomeFailed),
			Error:     err.Error(),
			ErrorKind: fault.Name(err),
		}, true
	}

	if len(route.Peers) == 0 {
		if !s.cfg.NoLocalFallback {
			return OptimizeResponse{}, false
		}
		return failed(noPeerErr())
	}

	single := OptimizeRequest{
		Name:    req.Programs[i].Name,
		Program: req.Programs[i].Program,
		Dialect: req.Dialect,
		Passes:  req.Passes,
		OnError: req.OnError,
		Budget:  req.Budget,
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			single.DeadlineMs = ms
		}
	}
	body, merr := json.Marshal(single)
	if merr != nil {
		return OptimizeResponse{}, false
	}
	res, err := s.node.Forward(ctx, route.Peers, "/v1/optimize", body)
	if err != nil {
		return failed(err)
	}
	var resp OptimizeResponse
	if jerr := json.Unmarshal(res.Body, &resp); jerr != nil || resp.Outcome == "" {
		// The peer answered something that is not an optimize response
		// (a proxy error page, a truncated body). Treat it like a peer
		// failure: redistribute or surface a typed 502.
		return failed(&fault.PeerError{
			Peer:     res.Peer,
			Attempts: 1,
			Err:      fmt.Errorf("undecodable response (status %d)", res.Status),
		})
	}
	resp.Index = i
	if resp.Name == "" {
		resp.Name = g.Name
	}
	resp.Passes = nil
	return resp, true
}

// handleReadyz is readiness, distinct from /healthz liveness: it reflects
// drain state and, in cluster mode, ring membership and peer health. A
// worker is ready unless draining; a coordinator additionally needs at
// least one healthy worker when local fallback is off (with fallback on
// it can still serve everything itself, degraded).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readiness struct {
		Status       string               `json:"status"`
		Draining     bool                 `json:"draining"`
		Mode         string               `json:"mode,omitempty"`
		RingMembers  int                  `json:"ringMembers,omitempty"`
		HealthyPeers int                  `json:"healthyPeers"`
		Peers        []cluster.PeerStatus `json:"peers,omitempty"`
	}
	rd := readiness{Draining: s.isDraining()}
	ready := !rd.Draining
	if s.node != nil {
		rd.Mode = string(s.node.Mode())
		rd.RingMembers = len(s.node.Members())
		rd.HealthyPeers = s.node.HealthyPeerCount()
		rd.Peers = s.node.Status()
		if !s.node.Ready() && s.cfg.NoLocalFallback {
			ready = false
		}
	}
	status := http.StatusOK
	rd.Status = "ready"
	if !ready {
		status = http.StatusServiceUnavailable
		rd.Status = "not-ready"
	}
	writeJSON(w, status, rd)
}

// handleClusterCache serves one persistent-store entry to a peer (the
// remote cache tier's fetch endpoint). It reads the store directly —
// never through an engine or a remote backend — so fetches cannot
// recurse, and a store that never holds degraded results cannot leak
// them. 404 is the only miss shape; peers treat every failure as a miss.
func (s *Server) handleClusterCache(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	if s.store == nil {
		http.NotFound(w, r)
		return
	}
	data, ok := s.store.Get(key)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}
