package server

// The headline acceptance test for the persistent tier: a daemon is fed
// the corpus, dies, and a fresh daemon on the same cache directory must
// answer every previously seen program from disk — byte-identical
// results, zero pass executions — which the /metrics pass-event counters
// prove (cache hits run no passes, so the counters stay flat).

import (
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"assignmentmotion/internal/corpus"
)

var passRunsRe = regexp.MustCompile(`(?m)^amoptd_pass_runs_total\{pass="[^"]+"\} (\d+)$`)

// totalPassRuns scrapes /metrics and sums amoptd_pass_runs_total across
// all passes.
func totalPassRuns(t *testing.T, url string) int {
	t.Helper()
	hr, body := getBody(t, url+"/metrics")
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", hr.StatusCode)
	}
	total := 0
	for _, m := range passRunsRe.FindAllStringSubmatch(body, -1) {
		n, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatalf("bad pass counter %q: %v", m[0], err)
		}
		total += n
	}
	return total
}

func TestRestartServesFromDiskWithoutRunningPasses(t *testing.T) {
	dir := t.TempDir()
	names := corpus.Names()

	// First life: compute everything, populating the persistent tier.
	srvA, tsA := newTestServer(t, Config{CacheDir: dir})
	firstLife := make(map[string]string, len(names))
	for _, name := range names {
		var resp OptimizeResponse
		hr := postJSON(t, tsA.URL+"/v1/optimize", OptimizeRequest{Program: corpus.Source(name)}, &resp)
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d (error: %s)", name, hr.StatusCode, resp.Error)
		}
		if resp.CacheHit {
			t.Fatalf("%s: fresh daemon claims a cache hit", name)
		}
		firstLife[name] = resp.Program
	}
	if runs := totalPassRuns(t, tsA.URL); runs < len(names) {
		t.Fatalf("first life ran %d passes for %d programs; expected at least one per program", runs, len(names))
	}
	if n := srvA.Store().Len(); n != len(names) {
		t.Fatalf("persistent store holds %d entries; want %d", n, len(names))
	}
	tsA.Close()
	if err := srvA.Close(); err != nil { // flushes the store index
		t.Fatal(err)
	}

	// Second life: same directory, fresh process state.
	_, tsB := newTestServer(t, Config{CacheDir: dir})
	for _, name := range names {
		var resp OptimizeResponse
		hr := postJSON(t, tsB.URL+"/v1/optimize", OptimizeRequest{Program: corpus.Source(name)}, &resp)
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("%s after restart: status = %d (error: %s)", name, hr.StatusCode, resp.Error)
		}
		if !resp.CacheHit || resp.CacheTier != "disk" {
			t.Errorf("%s after restart: cacheHit=%v tier=%q; want disk hit", name, resp.CacheHit, resp.CacheTier)
		}
		if resp.Program != firstLife[name] {
			t.Errorf("%s after restart: program differs from first life", name)
		}
	}

	// The decisive assertion: the restarted daemon answered everything
	// without executing a single pass.
	if runs := totalPassRuns(t, tsB.URL); runs != 0 {
		t.Errorf("restarted daemon ran %d passes; want 0 (everything from disk)", runs)
	}
	hr, body := getBody(t, tsB.URL+"/metrics")
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", hr.StatusCode)
	}
	want := `amoptd_cache_hits_total{tier="disk"} ` + strconv.Itoa(len(names))
	if !strings.Contains(body, want) {
		t.Errorf("metrics missing %q", want)
	}
}

// TestRestartDistinguishesPipelineConfigs: entries persisted under one
// pipeline configuration must not satisfy another after a restart — the
// on-disk key carries passes, recovery policy, and budget.
func TestRestartDistinguishesPipelineConfigs(t *testing.T) {
	dir := t.TempDir()
	src := corpus.Source("dotprod")

	srvA, tsA := newTestServer(t, Config{CacheDir: dir})
	postJSON(t, tsA.URL+"/v1/optimize", OptimizeRequest{Program: src}, nil)
	tsA.Close()
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	_, tsB := newTestServer(t, Config{CacheDir: dir})
	var resp OptimizeResponse
	postJSON(t, tsB.URL+"/v1/optimize", OptimizeRequest{Program: src, Passes: []string{"init", "am"}}, &resp)
	if resp.CacheHit {
		t.Errorf("init,am pipeline served from the default pipeline's cache entry")
	}
	var again OptimizeResponse
	postJSON(t, tsB.URL+"/v1/optimize", OptimizeRequest{Program: src}, &again)
	if !again.CacheHit || again.CacheTier != "disk" {
		t.Errorf("default pipeline after restart: cacheHit=%v tier=%q; want disk hit", again.CacheHit, again.CacheTier)
	}
}
