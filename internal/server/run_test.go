package server

// Tests of the execution service: POST /v1/run across dialects, typed
// 422s for trapped and truncated executions, the step-budget clamp, and
// the corpus-wide acceptance property — identical traces with
// ExprEvals(after) <= ExprEvals(before) on every corpus program.

import (
	"net/http"
	"strings"
	"testing"

	"assignmentmotion/internal/corpus"
)

// containsLine reports whether one exact line occurs in a text body.
func containsLine(body, line string) bool {
	for _, l := range strings.Split(body, "\n") {
		if l == line {
			return true
		}
	}
	return false
}

func TestRunBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var resp RunResponse
	hr := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Name: "basic",
		Program: `graph g {
			entry s
			exit e
			block s { x := a + b y := a + b goto e }
			block e { out(x, y) }
		}`,
		Inputs: map[string]int64{"a": 2, "b": 3},
	}, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %+v", hr.StatusCode, resp)
	}
	if resp.Outcome != "ran" || !resp.TraceMatch {
		t.Fatalf("outcome = %q traceMatch = %v", resp.Outcome, resp.TraceMatch)
	}
	if len(resp.Trace) != 2 || resp.Trace[0] != 5 || resp.Trace[1] != 5 {
		t.Fatalf("trace = %v, want [5 5]", resp.Trace)
	}
	// The optimizer must eliminate the recomputation of a+b.
	if resp.Before.ExprEvals != 2 || resp.After.ExprEvals != 1 {
		t.Fatalf("exprEvals before/after = %d/%d, want 2/1", resp.Before.ExprEvals, resp.After.ExprEvals)
	}
	if resp.Delta.ExprEvals != -1 {
		t.Fatalf("delta.exprEvals = %d, want -1", resp.Delta.ExprEvals)
	}
	if resp.Env["x"] != 5 || resp.Env["y"] != 5 {
		t.Fatalf("env = %v", resp.Env)
	}
	if resp.Optimized == "" || resp.Fingerprint == "" {
		t.Fatalf("missing optimized program or fingerprint: %+v", resp)
	}
}

func TestRunFunDialect(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var resp RunResponse
	hr := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Dialect: "fun",
		Program: `
			fn square(x: int): int { return x * x }
			prog p {
				let a = square(n)
				let b = square(n)
				out(a + b)
			}`,
		Inputs: map[string]int64{"n": 4},
	}, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %+v", hr.StatusCode, resp)
	}
	if len(resp.Trace) != 1 || resp.Trace[0] != 32 {
		t.Fatalf("trace = %v, want [32]", resp.Trace)
	}
	if !resp.TraceMatch {
		t.Fatal("traces diverged")
	}
	if resp.After.ExprEvals > resp.Before.ExprEvals {
		t.Fatalf("exprEvals regressed: before %d after %d", resp.Before.ExprEvals, resp.After.ExprEvals)
	}
}

func TestRunFunTypeErrorIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var eb errorBody
	hr := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Dialect: "fun",
		Program: `prog p { let a = true + 1 }`,
	}, &eb)
	if hr.StatusCode != http.StatusBadRequest || eb.ErrorKind != "parse-error" {
		t.Fatalf("status = %d kind = %q, want 400 parse-error", hr.StatusCode, eb.ErrorKind)
	}
}

func TestRunTrappedIs422(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var resp RunResponse
	hr := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Program: `graph g {
			entry s
			exit e
			block s { q := a / b goto e }
			block e { out(q) }
		}`,
		Inputs:      map[string]int64{"a": 7, "b": 0},
		TrapDivZero: true,
	}, &resp)
	if hr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", hr.StatusCode)
	}
	if resp.Outcome != "trapped" || resp.ErrorKind != "trapped" {
		t.Fatalf("outcome = %q kind = %q, want trapped", resp.Outcome, resp.ErrorKind)
	}
	// Without the trap the same division yields 0 and the run succeeds.
	var ok RunResponse
	hr = postJSON(t, ts.URL+"/v1/run", RunRequest{
		Program: `graph g {
			entry s
			exit e
			block s { q := a / b goto e }
			block e { out(q) }
		}`,
		Inputs: map[string]int64{"a": 7, "b": 0},
	}, &ok)
	if hr.StatusCode != http.StatusOK || len(ok.Trace) != 1 || ok.Trace[0] != 0 {
		t.Fatalf("untrapped run: status %d trace %v", hr.StatusCode, ok.Trace)
	}
}

func TestRunTruncatedIs422AndClamped(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxRunSteps: 50})
	var resp RunResponse
	hr := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Dialect: "fun",
		Program: `
			prog p {
				let i = 0
				while i < 1000000 { i := i + 1 }
				out(i)
			}`,
		MaxSteps: 10_000_000, // asks far beyond the server cap
	}, &resp)
	if hr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", hr.StatusCode)
	}
	if resp.Outcome != "truncated" || resp.ErrorKind != "truncated" {
		t.Fatalf("outcome = %q kind = %q, want truncated", resp.Outcome, resp.ErrorKind)
	}
	if resp.MaxSteps != 50 {
		t.Fatalf("maxSteps = %d, want the 50-step server clamp", resp.MaxSteps)
	}
}

func TestRunRejectsUnknownDialect(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var eb errorBody
	hr := postJSON(t, ts.URL+"/v1/run", RunRequest{Dialect: "cobol", Program: "x"}, &eb)
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", hr.StatusCode)
	}
}

func TestRunDrainingIs503(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	srv.Drain()
	var eb errorBody
	hr := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: "graph g { entry s exit s block s { out(1) } }"}, &eb)
	if hr.StatusCode != http.StatusServiceUnavailable || eb.ErrorKind != "draining" {
		t.Fatalf("status = %d kind = %q, want 503 draining", hr.StatusCode, eb.ErrorKind)
	}
}

// TestRunCorpusAcceptance is the PR's acceptance property over the whole
// golden corpus: every program runs with an identical before/after trace
// and never regresses the paper's primary cost measure.
func TestRunCorpusAcceptance(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	for _, name := range corpus.Names() {
		var resp RunResponse
		hr := postJSON(t, ts.URL+"/v1/run", RunRequest{
			Name:    name,
			Program: corpus.Source(name),
		}, &resp)
		if hr.StatusCode != http.StatusOK {
			t.Errorf("%s: status = %d (%s: %s)", name, hr.StatusCode, resp.ErrorKind, resp.Error)
			continue
		}
		if !resp.TraceMatch {
			t.Errorf("%s: traces diverged", name)
		}
		if resp.After.ExprEvals > resp.Before.ExprEvals {
			t.Errorf("%s: exprEvals regressed %d -> %d", name, resp.Before.ExprEvals, resp.After.ExprEvals)
		}
	}
	// The typed front-end corpus must satisfy the same property through
	// the "fun" dialect.
	for _, name := range corpus.FunNames() {
		var resp RunResponse
		hr := postJSON(t, ts.URL+"/v1/run", RunRequest{
			Name:    name,
			Dialect: "fun",
			Program: corpus.FunSource(name),
		}, &resp)
		if hr.StatusCode != http.StatusOK {
			t.Errorf("%s: status = %d (%s: %s)", name, hr.StatusCode, resp.ErrorKind, resp.Error)
			continue
		}
		if !resp.TraceMatch {
			t.Errorf("%s: traces diverged", name)
		}
		if resp.After.ExprEvals > resp.Before.ExprEvals {
			t.Errorf("%s: exprEvals regressed %d -> %d", name, resp.Before.ExprEvals, resp.After.ExprEvals)
		}
	}
}

func TestRunMetricsLabeled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var resp RunResponse
	postJSON(t, ts.URL+"/v1/run", RunRequest{
		Program: "graph g { entry s exit s block s { out(1) } }",
	}, &resp)
	_, body := getBody(t, ts.URL+"/metrics")
	if !containsLine(body, `amoptd_requests_total{endpoint="run",outcome="ran"} 1`) {
		t.Fatalf("metrics missing run counter:\n%s", body)
	}
}
