package server

// Live observability: a dependency-free Prometheus text-format exporter.
// Everything the daemon knows about itself — request counts and latency
// histograms by outcome, cache behaviour by tier, admission control
// (in-flight gauge, shed counter), per-pass wall-time aggregates sourced
// from pass.Event, and the persistent store's counters — is scraped from
// GET /metrics.

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"assignmentmotion/internal/cachestore"
	"assignmentmotion/internal/pass"
)

// latencyBuckets are the histogram upper bounds in seconds. Optimizations
// of realistic programs land in the 100µs–100ms range; the tail buckets
// catch budget blowouts and queueing.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	mu     sync.Mutex
	counts []int64
	sum    float64
	total  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets))}
}

func (h *histogram) observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.sum += seconds
	h.total++
}

// passStats aggregates one pass's executions across all computed jobs.
type passStats struct {
	runs    int64
	changes int64
	wall    time.Duration
}

// metrics is the daemon's metric registry.
type metrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[string]int64      // "endpoint|outcome" -> count
	latency  map[string]*histogram // endpoint -> histogram
	passes   map[string]passStats  // pass name -> aggregates

	cacheHitsMemory atomic.Int64
	cacheHitsDisk   atomic.Int64
	cacheHitsRegion atomic.Int64
	cacheMisses     atomic.Int64

	regionsReused     atomic.Int64
	regionsRecomputed atomic.Int64

	inflight atomic.Int64
	queued   atomic.Int64
	shed     atomic.Int64

	// store, when non-nil, contributes its counters at scrape time.
	store *cachestore.Store
}

func newMetrics(store *cachestore.Store) *metrics {
	return &metrics{
		start:    time.Now(),
		requests: map[string]int64{},
		latency:  map[string]*histogram{},
		passes:   map[string]passStats{},
		store:    store,
	}
}

// request records one finished request: its endpoint ("optimize",
// "batch", ...), its outcome label, and its latency.
func (m *metrics) request(endpoint, outcome string, d time.Duration) {
	m.mu.Lock()
	m.requests[endpoint+"|"+outcome]++
	h, ok := m.latency[endpoint]
	if !ok {
		h = newHistogram()
		m.latency[endpoint] = h
	}
	m.mu.Unlock()
	h.observe(d.Seconds())
}

// passEvent folds one computed pass.Event into the per-pass aggregates.
// Cache hits never produce events, so these counters measure real work:
// after a warm restart they stay flat while requests keep answering.
func (m *metrics) passEvent(ev pass.Event) {
	m.mu.Lock()
	st := m.passes[ev.Pass]
	st.runs++
	st.changes += int64(ev.Stats.Changes)
	st.wall += ev.Wall
	m.passes[ev.Pass] = st
	m.mu.Unlock()
}

// meanServiceSeconds reports the observed mean request latency across
// all endpoints (0 before anything has been observed) — the service-rate
// signal behind the computed Retry-After header.
func (m *metrics) meanServiceSeconds() float64 {
	m.mu.Lock()
	hists := make([]*histogram, 0, len(m.latency))
	for _, h := range m.latency {
		hists = append(hists, h)
	}
	m.mu.Unlock()
	var sum float64
	var total int64
	for _, h := range hists {
		h.mu.Lock()
		sum += h.sum
		total += h.total
		h.mu.Unlock()
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// cacheOutcome records the cache behaviour of one job.
func (m *metrics) cacheOutcome(hit bool, tier string) {
	switch {
	case !hit:
		m.cacheMisses.Add(1)
	case tier == "disk":
		m.cacheHitsDisk.Add(1)
	case tier == "region":
		m.cacheHitsRegion.Add(1)
	default:
		m.cacheHitsMemory.Add(1)
	}
}

// regionOutcome records the region accounting of one warm replay: how
// many regions were stitched from the recorded predecessor and how many
// were re-optimized live.
func (m *metrics) regionOutcome(reused, recomputed int) {
	m.regionsReused.Add(int64(reused))
	m.regionsRecomputed.Add(int64(recomputed))
}

// write renders the registry in Prometheus text exposition format.
func (m *metrics) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP amoptd_requests_total Finished requests by endpoint and outcome.\n")
	fmt.Fprintf(w, "# TYPE amoptd_requests_total counter\n")
	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Strings(reqKeys)
	for _, k := range reqKeys {
		endpoint, outcome := k, ""
		if i := strings.IndexByte(k, '|'); i >= 0 {
			endpoint, outcome = k[:i], k[i+1:]
		}
		fmt.Fprintf(w, "amoptd_requests_total{endpoint=%q,outcome=%q} %d\n", endpoint, outcome, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP amoptd_request_duration_seconds Request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE amoptd_request_duration_seconds histogram\n")
	latKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		latKeys = append(latKeys, k)
	}
	sort.Strings(latKeys)
	hists := make(map[string]*histogram, len(latKeys))
	for _, k := range latKeys {
		hists[k] = m.latency[k]
	}

	passKeys := make([]string, 0, len(m.passes))
	for k := range m.passes {
		passKeys = append(passKeys, k)
	}
	sort.Strings(passKeys)
	passes := make(map[string]passStats, len(passKeys))
	for _, k := range passKeys {
		passes[k] = m.passes[k]
	}
	m.mu.Unlock()

	for _, k := range latKeys {
		h := hists[k]
		h.mu.Lock()
		for i, ub := range latencyBuckets {
			fmt.Fprintf(w, "amoptd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", k, trimFloat(ub), h.counts[i])
		}
		fmt.Fprintf(w, "amoptd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", k, h.total)
		fmt.Fprintf(w, "amoptd_request_duration_seconds_sum{endpoint=%q} %g\n", k, h.sum)
		fmt.Fprintf(w, "amoptd_request_duration_seconds_count{endpoint=%q} %d\n", k, h.total)
		h.mu.Unlock()
	}

	fmt.Fprintf(w, "# HELP amoptd_cache_hits_total Jobs served from the result cache, by tier.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cache_hits_total counter\n")
	fmt.Fprintf(w, "amoptd_cache_hits_total{tier=\"memory\"} %d\n", m.cacheHitsMemory.Load())
	fmt.Fprintf(w, "amoptd_cache_hits_total{tier=\"disk\"} %d\n", m.cacheHitsDisk.Load())
	fmt.Fprintf(w, "amoptd_cache_hits_total{tier=\"region\"} %d\n", m.cacheHitsRegion.Load())
	fmt.Fprintf(w, "# HELP amoptd_cache_misses_total Jobs that ran the pipeline.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cache_misses_total counter\n")
	fmt.Fprintf(w, "amoptd_cache_misses_total %d\n", m.cacheMisses.Load())

	fmt.Fprintf(w, "# HELP amoptd_regions_reused_total Regions stitched from a recorded predecessor by warm replays.\n")
	fmt.Fprintf(w, "# TYPE amoptd_regions_reused_total counter\n")
	fmt.Fprintf(w, "amoptd_regions_reused_total %d\n", m.regionsReused.Load())
	fmt.Fprintf(w, "# HELP amoptd_regions_recomputed_total Regions re-optimized live by warm replays.\n")
	fmt.Fprintf(w, "# TYPE amoptd_regions_recomputed_total counter\n")
	fmt.Fprintf(w, "amoptd_regions_recomputed_total %d\n", m.regionsRecomputed.Load())

	fmt.Fprintf(w, "# HELP amoptd_inflight_jobs Optimization jobs currently holding a worker slot.\n")
	fmt.Fprintf(w, "# TYPE amoptd_inflight_jobs gauge\n")
	fmt.Fprintf(w, "amoptd_inflight_jobs %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP amoptd_queued_jobs Jobs waiting for a worker slot.\n")
	fmt.Fprintf(w, "# TYPE amoptd_queued_jobs gauge\n")
	fmt.Fprintf(w, "amoptd_queued_jobs %d\n", m.queued.Load())
	fmt.Fprintf(w, "# HELP amoptd_shed_total Requests rejected with 429 by admission control.\n")
	fmt.Fprintf(w, "# TYPE amoptd_shed_total counter\n")
	fmt.Fprintf(w, "amoptd_shed_total %d\n", m.shed.Load())

	fmt.Fprintf(w, "# HELP amoptd_pass_runs_total Executions per pass (computed jobs only; cache hits run no passes).\n")
	fmt.Fprintf(w, "# TYPE amoptd_pass_runs_total counter\n")
	for _, k := range passKeys {
		fmt.Fprintf(w, "amoptd_pass_runs_total{pass=%q} %d\n", k, passes[k].runs)
	}
	fmt.Fprintf(w, "# HELP amoptd_pass_wall_seconds_total Wall time per pass across all computed jobs.\n")
	fmt.Fprintf(w, "# TYPE amoptd_pass_wall_seconds_total counter\n")
	for _, k := range passKeys {
		fmt.Fprintf(w, "amoptd_pass_wall_seconds_total{pass=%q} %g\n", k, passes[k].wall.Seconds())
	}
	fmt.Fprintf(w, "# HELP amoptd_pass_changes_total Changes reported per pass across all computed jobs.\n")
	fmt.Fprintf(w, "# TYPE amoptd_pass_changes_total counter\n")
	for _, k := range passKeys {
		fmt.Fprintf(w, "amoptd_pass_changes_total{pass=%q} %d\n", k, passes[k].changes)
	}

	if m.store != nil {
		st := m.store.Stats()
		fmt.Fprintf(w, "# HELP amoptd_store_entries Entries in the persistent cache store.\n")
		fmt.Fprintf(w, "# TYPE amoptd_store_entries gauge\n")
		fmt.Fprintf(w, "amoptd_store_entries %d\n", st.Entries)
		fmt.Fprintf(w, "# HELP amoptd_store_bytes Payload bytes in the persistent cache store.\n")
		fmt.Fprintf(w, "# TYPE amoptd_store_bytes gauge\n")
		fmt.Fprintf(w, "amoptd_store_bytes %d\n", st.Bytes)
		fmt.Fprintf(w, "# HELP amoptd_store_evictions_total LRU evictions from the persistent store.\n")
		fmt.Fprintf(w, "# TYPE amoptd_store_evictions_total counter\n")
		fmt.Fprintf(w, "amoptd_store_evictions_total %d\n", st.Evictions)
		fmt.Fprintf(w, "# HELP amoptd_store_corruptions_total Corrupt entries discarded by the persistent store.\n")
		fmt.Fprintf(w, "# TYPE amoptd_store_corruptions_total counter\n")
		fmt.Fprintf(w, "amoptd_store_corruptions_total %d\n", st.Corruptions)
	}

	fmt.Fprintf(w, "# HELP amoptd_uptime_seconds Seconds since the daemon started.\n")
	fmt.Fprintf(w, "# TYPE amoptd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "amoptd_uptime_seconds %g\n", time.Since(m.start).Seconds())
	fmt.Fprintf(w, "# HELP amoptd_goroutines Current goroutine count.\n")
	fmt.Fprintf(w, "# TYPE amoptd_goroutines gauge\n")
	fmt.Fprintf(w, "amoptd_goroutines %d\n", runtime.NumGoroutine())
}

// trimFloat renders a bucket bound the way Prometheus expects ("0.005",
// not "0.0050000001").
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
