package server

// Chaos tests: internal/fault/inject wired through the daemon's Inject
// seam. The contract under injected faults is strict — panics become
// clean 500s carrying the typed failure name, the process never crashes,
// and the persistent cache is never poisoned: a later daemon on the same
// cache directory must compute correct results from scratch.

import (
	"net/http"
	"testing"

	"assignmentmotion/internal/corpus"
	"assignmentmotion/internal/fault/inject"
)

func TestChaosPanicsBecomeTyped500s(t *testing.T) {
	dir := t.TempDir()
	injector := inject.New(inject.Config{Seed: 7, Rate: 1, Kinds: []inject.Kind{inject.Panic}})
	srv, ts := newTestServer(t, Config{CacheDir: dir, Inject: injector.Wrap})

	for _, name := range corpus.Names() {
		var resp OptimizeResponse
		hr := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Program: corpus.Source(name)}, &resp)
		if hr.StatusCode != http.StatusInternalServerError {
			t.Errorf("%s: status = %d; want 500", name, hr.StatusCode)
		}
		if resp.Outcome != "failed" {
			t.Errorf("%s: outcome = %q; want failed", name, resp.Outcome)
		}
		if resp.ErrorKind != "pass-panic" {
			t.Errorf("%s: errorKind = %q; want pass-panic (error: %s)", name, resp.ErrorKind, resp.Error)
		}
		if resp.FailedPass == "" {
			t.Errorf("%s: response does not name the panicking pass", name)
		}
		if resp.Program != "" {
			t.Errorf("%s: failed response carries a program", name)
		}
	}

	// The daemon is still alive and healthy after absorbing every panic.
	if hr, _ := getBody(t, ts.URL+"/healthz"); hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos = %d; want 200", hr.StatusCode)
	}

	// Failed results must never reach the persistent tier.
	if n := srv.Store().Len(); n != 0 {
		t.Fatalf("persistent store holds %d entries after pure-failure chaos; want 0", n)
	}
}

// TestChaosDegradedResultsNotPersisted: with a skip-and-continue policy
// the request succeeds (200, outcome degraded) but the result is
// second-class — it must stay out of the persistent cache too.
func TestChaosDegradedResultsNotPersisted(t *testing.T) {
	dir := t.TempDir()
	injector := inject.New(inject.Config{Seed: 7, Rate: 1, Kinds: []inject.Kind{inject.Panic}})
	srv, ts := newTestServer(t, Config{CacheDir: dir, Inject: injector.Wrap})

	var resp OptimizeResponse
	hr := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{
		Program: corpus.Source("dotprod"),
		OnError: "skip",
	}, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (error: %s); want 200", hr.StatusCode, resp.Error)
	}
	if resp.Outcome != "degraded" {
		t.Fatalf("outcome = %q; want degraded", resp.Outcome)
	}
	if len(resp.Failures) == 0 {
		t.Error("degraded response lists no absorbed failures")
	}
	if n := srv.Store().Len(); n != 0 {
		t.Fatalf("persistent store holds %d degraded entries; want 0", n)
	}
}

// TestChaosBatchSurvives: a whole batch of injected panics streams clean
// typed failures and an honest summary; the server keeps serving.
func TestChaosBatchSurvives(t *testing.T) {
	injector := inject.New(inject.Config{Seed: 3, Rate: 1, Kinds: []inject.Kind{inject.Panic}})
	_, ts := newTestServer(t, Config{Inject: injector.Wrap})

	req := BatchRequest{}
	names := corpus.Names()
	for _, name := range names {
		req.Programs = append(req.Programs, BatchProgram{Program: corpus.Source(name)})
	}
	results, summary := postBatch(t, ts.URL, req)
	if len(results) != len(names) {
		t.Fatalf("got %d result lines; want %d", len(results), len(names))
	}
	for _, r := range results {
		if r.Outcome != "failed" || r.ErrorKind != "pass-panic" {
			t.Errorf("index %d: outcome=%q kind=%q; want failed/pass-panic", r.Index, r.Outcome, r.ErrorKind)
		}
	}
	if summary.Failed != len(names) || summary.Optimized != 0 {
		t.Errorf("summary = %+v; want %d failed", summary, len(names))
	}
	if hr, _ := getBody(t, ts.URL+"/healthz"); hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after batch chaos = %d; want 200", hr.StatusCode)
	}
}

// TestChaosNeverPoisonsSuccessors: after a chaos daemon dies, a clean
// daemon on the same cache directory computes correct results — nothing
// the faulty daemon did is visible, and the clean daemon's results match
// a pristine in-memory daemon byte for byte.
func TestChaosNeverPoisonsSuccessors(t *testing.T) {
	dir := t.TempDir()

	injector := inject.New(inject.Config{Seed: 11, Rate: 1})
	chaosSrv, chaosTS := newTestServer(t, Config{CacheDir: dir, Inject: injector.Wrap})
	for _, name := range corpus.Names() {
		postJSON(t, chaosTS.URL+"/v1/optimize", OptimizeRequest{Program: corpus.Source(name)}, nil)
		postJSON(t, chaosTS.URL+"/v1/optimize", OptimizeRequest{Program: corpus.Source(name), OnError: "skip"}, nil)
		postJSON(t, chaosTS.URL+"/v1/optimize", OptimizeRequest{Program: corpus.Source(name), OnError: "rollback"}, nil)
	}
	if n := chaosSrv.Store().Len(); n != 0 {
		t.Fatalf("chaos daemon persisted %d entries; want 0", n)
	}
	chaosTS.Close()
	if err := chaosSrv.Close(); err != nil {
		t.Fatal(err)
	}

	_, cleanTS := newTestServer(t, Config{CacheDir: dir})
	_, pristineTS := newTestServer(t, Config{})
	for _, name := range corpus.Names() {
		var clean, pristine OptimizeResponse
		req := OptimizeRequest{Program: corpus.Source(name)}
		hr := postJSON(t, cleanTS.URL+"/v1/optimize", req, &clean)
		postJSON(t, pristineTS.URL+"/v1/optimize", req, &pristine)
		if hr.StatusCode != http.StatusOK || clean.Outcome != "optimized" {
			t.Errorf("%s after chaos: status=%d outcome=%q (error: %s)", name, hr.StatusCode, clean.Outcome, clean.Error)
		}
		if clean.CacheHit {
			t.Errorf("%s: clean daemon claims a cache hit off a store chaos should have left empty", name)
		}
		if clean.Program != pristine.Program {
			t.Errorf("%s: post-chaos result differs from pristine result", name)
		}
	}
}
