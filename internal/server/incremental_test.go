package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// diamondSrc builds the region-contained diamond family used by the
// engine and incr tests, as source text for HTTP requests.
func diamondSrc(nd int, edit map[int]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph diamonds {\n  entry s0\n  exit done\n")
	fmt.Fprintf(&b, "  block s0 {\n    pre := u + v\n    goto d0\n  }\n")
	for i := 0; i < nd; i++ {
		fmt.Fprintf(&b, "  block d%d {\n    if u + v < 7 then a%d else b%d\n  }\n", i, i, i)
		armY := fmt.Sprintf("y%d := p + q", i)
		if v, ok := edit[i]; ok {
			armY = v
		}
		fmt.Fprintf(&b, "  block a%d {\n    x%d := p + q\n    %s\n    goto j%d\n  }\n", i, i, armY, i)
		fmt.Fprintf(&b, "  block b%d {\n    z%d := p - q\n    goto j%d\n  }\n", i, i, i)
		next := fmt.Sprintf("d%d", i+1)
		if i == nd-1 {
			next = "done"
		}
		fmt.Fprintf(&b, "  block j%d {\n    w%d := x%d\n    goto %s\n  }\n", i, i, i, next)
	}
	fmt.Fprintf(&b, "  block done { out(u) }\n}\n")
	return b.String()
}

// TestServerRegionTier: with Config.Incremental on, an edited resubmit is
// served by the region tier, the response carries the per-region
// accounting, the batch summary rolls it up, and /metrics exports the
// region counters.
func TestServerRegionTier(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Incremental: true})
	const nd = 30

	var first OptimizeResponse
	resp := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Name: "base", Program: diamondSrc(nd, nil)}, &first)
	if resp.StatusCode != http.StatusOK || first.CacheHit {
		t.Fatalf("base: status=%d cacheHit=%v", resp.StatusCode, first.CacheHit)
	}

	var warm OptimizeResponse
	// Edit diamond 12, not one whose blocks straddle a region boundary:
	// a straddling edit dirties two regions and correctly falls back cold.
	resp = postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{Name: "edited", Program: diamondSrc(nd, map[int]string{12: "y12 := x12"})}, &warm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edited: status=%d", resp.StatusCode)
	}
	if !warm.CacheHit || warm.CacheTier != "region" {
		t.Fatalf("edited: cacheHit=%v tier=%q; want a region hit", warm.CacheHit, warm.CacheTier)
	}
	if warm.RegionsTotal < 3 || warm.RegionsReused != warm.RegionsTotal-1 || warm.RegionsRecomputed != 1 {
		t.Fatalf("edited region accounting: total=%d reused=%d recomputed=%d",
			warm.RegionsTotal, warm.RegionsReused, warm.RegionsRecomputed)
	}
	if warm.Program == "" {
		t.Fatal("region hit returned no program")
	}

	// A differently edited variant through the batch endpoint rolls the
	// region accounting into the summary.
	results, summary := postBatch(t, ts.URL, BatchRequest{
		Programs: []BatchProgram{{Name: "edit2", Program: diamondSrc(nd, map[int]string{19: "y19 := x19"})}},
	})
	if len(results) != 1 || results[0].CacheTier != "region" {
		t.Fatalf("batch results: %+v", results)
	}
	if summary.RegionHits != 1 || summary.RegionsReused != results[0].RegionsReused || summary.RegionsRecomputed != 1 {
		t.Fatalf("batch summary region accounting: %+v", summary)
	}

	_, body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`amoptd_cache_hits_total{tier="region"} 2`,
		"amoptd_regions_recomputed_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(body, "amoptd_regions_reused_total") {
		t.Error("/metrics missing amoptd_regions_reused_total")
	}
}
