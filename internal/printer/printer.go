// Package printer renders flow graphs back into the ".fg" source language
// (round-trippable through internal/parse) and into Graphviz dot for
// visual inspection of transformation results.
package printer

import (
	"fmt"
	"io"
	"strings"

	"assignmentmotion/internal/ir"
)

// Fprint writes g in .fg syntax to w. The output parses back (with
// AllowTemps) to a graph with the same Encode() value.
func Fprint(w io.Writer, g *ir.Graph) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s {\n", g.Name)
	fmt.Fprintf(&sb, "  entry %s\n", g.EntryBlock().Name)
	fmt.Fprintf(&sb, "  exit %s\n", g.ExitBlock().Name)
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "  block %s {\n", b.Name)
		for _, in := range b.Instrs {
			switch in.Kind {
			case ir.KindSkip:
				// A lone skip keeps otherwise-empty blocks parseable;
				// skips next to real instructions are not printed.
				if len(b.Instrs) == 1 {
					sb.WriteString("    skip\n")
				}
			case ir.KindAssign:
				fmt.Fprintf(&sb, "    %s := %s\n", in.LHS, formatTerm(in.RHS))
			case ir.KindOut:
				args := make([]string, len(in.Args))
				for i, o := range in.Args {
					args[i] = o.Key()
				}
				fmt.Fprintf(&sb, "    out(%s)\n", strings.Join(args, ", "))
			case ir.KindCond:
				fmt.Fprintf(&sb, "    if %s %s %s then %s else %s\n",
					formatTerm(in.CondL), in.CondOp, formatTerm(in.CondR),
					g.Block(b.Succs[0]).Name, g.Block(b.Succs[1]).Name)
			}
		}
		if _, hasCond := b.Cond(); !hasCond && len(b.Succs) == 1 {
			fmt.Fprintf(&sb, "    goto %s\n", g.Block(b.Succs[0]).Name)
		}
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders g in .fg syntax.
func String(g *ir.Graph) string {
	var sb strings.Builder
	if err := Fprint(&sb, g); err != nil {
		panic(err) // strings.Builder never errors
	}
	return sb.String()
}

func formatTerm(t ir.Term) string {
	if t.Trivial() {
		return t.Args[0].Key()
	}
	return fmt.Sprintf("%s %s %s", t.Args[0].Key(), t.Op, t.Args[1].Key())
}

// Dot renders g as a Graphviz digraph. Blocks become record-shaped nodes
// listing their instructions; branch edges are labelled T/F.
func Dot(g *ir.Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Name)
	sb.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, b := range g.Blocks {
		var lines []string
		lines = append(lines, b.Name)
		for _, in := range b.Instrs {
			lines = append(lines, in.String())
		}
		label := strings.Join(lines, "\\l") + "\\l"
		attrs := ""
		if b.ID == g.Entry {
			attrs = ", penwidth=2"
		}
		if b.ID == g.Exit {
			attrs = ", peripheries=2"
		}
		fmt.Fprintf(&sb, "  %q [label=\"%s\"%s];\n", b.Name, label, attrs)
	}
	for _, b := range g.Blocks {
		_, branch := b.Cond()
		for i, s := range b.Succs {
			label := ""
			if branch {
				if i == 0 {
					label = " [label=\"T\"]"
				} else {
					label = " [label=\"F\"]"
				}
			}
			fmt.Fprintf(&sb, "  %q -> %q%s;\n", b.Name, g.Block(s).Name, label)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
