package printer

import (
	"strings"
	"testing"

	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

const running = `
graph running {
  entry b1
  exit b4
  block b1 {
    y := c + d
    goto b2
  }
  block b2 {
    if x + z > y + i then b3 else b4
  }
  block b3 {
    y := c + d
    x := y + z
    i := i + x
    goto b2
  }
  block b4 {
    x := y + z
    x := c + d
    out(i, x, y)
  }
}
`

func TestRoundTrip(t *testing.T) {
	g := parse.MustParse(running)
	text := String(g)
	g2, err := parse.ParseWith(text, parse.Options{AllowTemps: true})
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if g.Encode() != g2.Encode() {
		t.Errorf("round trip changed graph:\n--- original\n%s\n--- reparsed\n%s", g.Encode(), g2.Encode())
	}
}

func TestRoundTripWithTempsAndSkips(t *testing.T) {
	src := `
graph g {
  entry a
  exit c
  block a {
    h1 := x + y
    z := h1
    if h1 < 10 then b else c
  }
  block b {
    goto c
  }
  block c { out(z) }
}
`
	g, err := parse.ParseWith(src, parse.Options{AllowTemps: true})
	if err != nil {
		t.Fatal(err)
	}
	text := String(g)
	g2, err := parse.ParseWith(text, parse.Options{AllowTemps: true})
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if g.Encode() != g2.Encode() {
		t.Errorf("round trip changed graph:\n%s\nvs\n%s", g.Encode(), g2.Encode())
	}
	if !g2.IsTemp("h1") {
		t.Error("temp registry lost in round trip")
	}
}

func TestRoundTripAfterSplit(t *testing.T) {
	g := parse.MustParse(running)
	g.SplitCriticalEdges()
	text := String(g)
	g2, err := parse.ParseWith(text, parse.Options{AllowTemps: true})
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if g.Encode() != g2.Encode() {
		t.Error("round trip changed split graph")
	}
}

func TestPrintShape(t *testing.T) {
	g := parse.MustParse(running)
	text := String(g)
	for _, want := range []string{
		"graph running {",
		"entry b1",
		"exit b4",
		"y := c + d",
		"if x + z > y + i then b3 else b4",
		"out(i, x, y)",
		"goto b2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestDot(t *testing.T) {
	g := parse.MustParse(running)
	dot := Dot(g)
	for _, want := range []string{
		`digraph "running"`,
		`"b2" -> "b3" [label="T"]`,
		`"b2" -> "b4" [label="F"]`,
		`"b1" -> "b2";`,
		"x := y+z",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
}

func TestPrintLoneSkipBlock(t *testing.T) {
	b := ir.NewBuilder("s")
	b.Block("a")
	b.Block("b").OutVars()
	b.Edge("a", "b")
	g := b.MustFinish("a", "b")
	text := String(g)
	if !strings.Contains(text, "skip") {
		t.Errorf("lone skip not printed:\n%s", text)
	}
	g2, err := parse.ParseWith(text, parse.Options{AllowTemps: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Encode() != g2.Encode() {
		t.Error("skip round trip failed")
	}
}
