package dce

import (
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

func TestRemovesDeadAssignment(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := 1
    y := 2
    goto e
  }
  block e { out(y) }
}
`)
	if n := Run(g); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	for _, in := range g.BlockByName("a").Instrs {
		if in.Key() == "x:=1" {
			t.Error("dead x := 1 survived")
		}
	}
}

func TestCascadingDeadCode(t *testing.T) {
	// y feeds only x, x feeds nothing: both die across iterations.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    y := 2
    x := y + 1
    z := 3
    goto e
  }
  block e { out(z) }
}
`)
	if n := Run(g); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
}

func TestKeepsLiveThroughBranch(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := 1
    if c < 0 then b else e
  }
  block b { out(x)
    goto e }
  block e { skip }
}
`)
	if n := Run(g); n != 0 {
		t.Errorf("removed %d live assignments", n)
	}
}

func TestLoopCarriedLiveness(t *testing.T) {
	// i is used by the loop condition and its own increment: live.
	g := parse.MustParse(`
graph g {
  entry pre
  exit e
  block pre {
    i := 0
    goto body
  }
  block body {
    i := i + 1
    if i < 5 then body else e
  }
  block e { out(i) }
}
`)
	orig := g.Clone()
	if n := Run(g); n != 0 {
		t.Errorf("removed %d", n)
	}
	r1, r2 := interp.Run(orig, nil, 0), interp.Run(g, nil, 0)
	if !interp.TraceEqual(r1, r2) {
		t.Error("trace changed")
	}
}

func TestDeadLoopVariable(t *testing.T) {
	// s accumulates but is never read outside: dead in every iteration.
	g := parse.MustParse(`
graph g {
  entry pre
  exit e
  block pre {
    i := 0
    s := 0
    goto body
  }
  block body {
    s := s + i
    i := i + 1
    if i < 5 then body else e
  }
  block e { out(i) }
}
`)
	if n := Run(g); n != 2 {
		t.Errorf("removed %d, want 2 (both s assignments)", n)
	}
	var envs []map[ir.Var]int64
	envs = append(envs, nil)
	for _, env := range envs {
		r := interp.Run(g, env, 0)
		if len(r.Trace) != 1 || r.Trace[0] != 5 {
			t.Errorf("trace = %v", r.Trace)
		}
	}
}

func TestCondUsesKeepVarsAlive(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := 5
    if x < 10 then b else e
  }
  block b { y := 1
    goto e }
  block e { out(y) }
}
`)
	if n := Run(g); n != 0 {
		t.Errorf("removed %d (x is read by the condition)", n)
	}
}
