// Package dce implements dead assignment elimination based on strong
// liveness (faint-code elimination): a variable is strongly live only if
// it is eventually used by an observable instruction (out, branch
// condition) or contributes to a strongly live variable. Unlike plain
// liveness, this removes self-sustaining dead loops such as s := s+i whose
// only "use" feeds the dead variable itself.
//
// The paper deliberately excludes dead-code elimination from assignment
// motion: eliminating a "dead" assignment is not semantics-preserving in
// general, because evaluating its right-hand side may cause a run-time
// error (§3, footnote 3). In this reproduction the interpreter's semantics
// are total (division by zero yields 0), so dce is observationally safe
// here; it is still kept out of every paper pipeline and offered only as
// an opt-in comparison pass, matching the paper's treatment of [11, 17].
package dce

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

func init() {
	pass.Register(pass.Pass{
		Name:        "dce",
		Description: "dead assignment elimination by strong liveness (faint code), iterated to a fixpoint",
		Ref:         "§3 footnote 3; cf. [11, 17]",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			removed, rounds := RunWith(g, s)
			return pass.Stats{Changes: removed, Iterations: rounds}, nil
		},
	})
}

// Run removes assignments whose targets are not strongly live at the
// assignment's exit and returns the number of removed instructions. It
// iterates to a fixpoint (removal can expose further dead code, although
// strong liveness already handles most cascades in one pass).
func Run(g *ir.Graph) int {
	removed, _ := RunWith(g, nil)
	return removed
}

// RunWith is Run against session s (nil for the uncached path): the
// liveness vectors come from the session's arena and solver work is
// tallied into the session for per-pass reporting. It additionally returns
// the number of analysis+removal rounds until the fixpoint.
func RunWith(g *ir.Graph, s *analysis.Session) (removed, rounds int) {
	for {
		rounds++
		n := runOnce(g, s)
		removed += n
		if n == 0 {
			return removed, rounds
		}
	}
}

func runOnce(g *ir.Graph, s *analysis.Session) int {
	prog := analysis.NewProg(g)
	vars := g.Vars()
	index := make(map[ir.Var]int, len(vars))
	for i, v := range vars {
		index[v] = i
	}
	bits := len(vars)
	if bits == 0 {
		return 0
	}
	n := prog.Len()

	ar := s.Arena()
	mark := ar.Mark()
	defer ar.Release(mark)

	// Observable uses (out, cond) unconditionally generate liveness;
	// an assignment w := t generates liveness of t's variables only when
	// w itself is strongly live after it. That condition makes strong
	// liveness non-separable: defining instructions are NOT pure gen/kill
	// (their gen depends on the incoming fact), so they are marked
	// Irregular and keep the closure transfer, while every other
	// instruction runs on the dense kernel with Gen = obsUse and an empty
	// Kill.
	obsUse := ar.Vecs(n)
	kill := ar.Vecs(n)
	emptyKill := ar.Vec(bits)
	irregular := ar.Vec(n)
	for i := 0; i < n; i++ {
		obsUse[i] = ar.Vec(bits)
		kill[i] = emptyKill
		in := prog.Ins[i]
		if in.Kind == ir.KindOut || in.Kind == ir.KindCond {
			for _, v := range in.Uses(nil) {
				obsUse[i].Set(index[v])
			}
		}
		if _, ok := in.Defs(); ok {
			irregular.Set(i)
		}
	}

	res := dataflow.Solve(dataflow.Problem{
		N: n, Bits: bits, Dir: dataflow.Backward, Meet: dataflow.Any,
		Preds: prog.Preds, Succs: prog.Succs,
		Arena:     ar,
		Stats:     s.DataflowStats(),
		Workers:   s.SolverWorkersFor(n),
		Gen:       obsUse,
		Kill:      kill,
		Irregular: irregular,
		// Backward: solver "in" is strong liveness at the instruction
		// exit, "out" at its entry. Consulted only at Irregular
		// (defining) instructions.
		Transfer: func(i int, in, out bitvec.Vec) {
			out.CopyFrom(in)
			ins := prog.Ins[i]
			if v, ok := ins.Defs(); ok {
				liveAfter := in.Get(index[v])
				out.Clear(index[v])
				if liveAfter {
					for _, u := range ins.RHS.Vars(nil) {
						out.Set(index[u])
					}
				}
			}
			out.Or(obsUse[i])
		},
	})

	removed := 0
	idx := 0
	for _, b := range g.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			dead := false
			if v, ok := in.Defs(); ok {
				// res.In[idx] is strong liveness at the instruction exit.
				if !res.In[idx].Get(index[v]) {
					dead = true
				}
			}
			if dead {
				removed++
			} else {
				kept = append(kept, in)
			}
			idx++
		}
		b.Instrs = kept
	}
	g.Normalize()
	return removed
}
