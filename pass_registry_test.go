package assignmentmotion

// Registry agreement and concurrency tests for the pass manager. The
// -race CI step runs TestConcurrentPipelinesSharedEngine to check that
// concurrent pipelines — each with its own session — and one shared batch
// engine are race-free.

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestRegistryOrderingPinned pins the exact contents and sorted order of
// the pass registry — the order `amopt -passes list` and amoptd's
// GET /v1/passes present to users. Adding or renaming a pass is a conscious
// API change and must update this list.
func TestRegistryOrderingPinned(t *testing.T) {
	want := []string{
		"aht", "am", "am-restricted", "copyprop", "dce", "em", "emcp",
		"flush", "globalg", "gvn", "gvn-emcp", "init", "mr", "pde",
		"rae", "split", "tidy",
	}
	var got []string
	for _, in := range PassInfos() {
		got = append(got, in.Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("registry order changed:\n got %v\nwant %v", got, want)
	}
}

// TestPassesMatchRegistry pins the facade's hand-curated Passes() list to
// the self-registered pass registry: every registered pass is listed and
// every listed pass is registered, with a description and paper reference.
// CI asserts this via `go test -run TestPassesMatchRegistry`.
func TestPassesMatchRegistry(t *testing.T) {
	listed := map[string]bool{}
	for _, p := range Passes() {
		if listed[string(p)] {
			t.Errorf("Passes() lists %q twice", p)
		}
		listed[string(p)] = true
	}
	registered := map[string]bool{}
	for _, info := range PassInfos() {
		registered[info.Name] = true
		if !listed[info.Name] {
			t.Errorf("registered pass %q missing from Passes()", info.Name)
		}
		if info.Description == "" {
			t.Errorf("pass %q has no description", info.Name)
		}
		if info.Ref == "" {
			t.Errorf("pass %q has no paper reference", info.Name)
		}
	}
	for name := range listed {
		if !registered[name] {
			t.Errorf("Passes() lists %q, which is not registered", name)
		}
	}
}

// TestConcurrentPipelinesSharedEngine drives one batch engine from many
// goroutines while independent pipelines run concurrently on the side —
// the sharing pattern a long-lived service would use. Run with -race.
func TestConcurrentPipelinesSharedEngine(t *testing.T) {
	const workers = 8
	e := NewBatchEngine(BatchOptions{CacheSize: 32})

	// A small graph pool with deliberate duplicates so the cache and its
	// single-flight path are exercised under contention.
	graphs := make([]*Graph, 12)
	for i := range graphs {
		graphs[i] = RandomStructured(int64(i%4), GenConfig{Size: 8})
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range graphs {
				r := e.Optimize(context.Background(), graphs[(i+w)%len(graphs)])
				if r.Err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, r.Err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := graphs[w%len(graphs)].Clone()
			if _, err := ApplyPipeline(g, PassInit, PassAM, PassFlush, PassTidy); err != nil {
				errs <- fmt.Errorf("pipeline %d: %w", w, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
