// Package assignmentmotion is a complete, from-scratch Go implementation
// of "The Power of Assignment Motion" (Jens Knoop, Oliver Rüthing,
// Bernhard Steffen; PLDI 1995): the uniform algorithm for eliminating
// partially redundant expressions AND assignments, capturing all
// second-order effects between expression motion (EM) and assignment
// motion (AM).
//
// The package is a facade over the building blocks in internal/:
//
//   - Parse / ParseFile read the ".fg" flow-graph language (see README).
//   - Optimize runs the paper's three-phase global algorithm:
//     initialization, exhaustive assignment motion, final flush.
//   - Apply composes individual passes (EM-only, AM-only, restricted AM,
//     copy propagation, ...) for comparisons.
//   - Run interprets a program and reports the dynamic cost measures the
//     paper's optimality theorems are stated in.
//   - Format / Dot render programs as source text or Graphviz.
//
// A minimal session:
//
//	g, err := assignmentmotion.Parse(src)
//	...
//	res := assignmentmotion.Optimize(g)
//	fmt.Println(assignmentmotion.Format(g), res.AM.Iterations)
package assignmentmotion

import (
	"context"
	"fmt"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bytecode"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/emcp"
	"assignmentmotion/internal/engine"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/metrics"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/pass"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/typeinference"
	"assignmentmotion/internal/verify"

	// Every pass package registers itself with internal/pass in its init;
	// these imports (several already pulled in transitively above) make the
	// registry complete whenever the facade is linked in.
	_ "assignmentmotion/internal/aht"
	_ "assignmentmotion/internal/am"
	_ "assignmentmotion/internal/copyprop"
	_ "assignmentmotion/internal/dce"
	_ "assignmentmotion/internal/flush"
	_ "assignmentmotion/internal/gvn"
	_ "assignmentmotion/internal/lcm"
	_ "assignmentmotion/internal/mr"
	_ "assignmentmotion/internal/pde"
	_ "assignmentmotion/internal/rae"
)

// Core IR types, re-exported for downstream use.
type (
	// Graph is a control flow graph G = (N, E, s, e) of basic blocks.
	Graph = ir.Graph
	// Block is a basic block of instructions.
	Block = ir.Block
	// Instr is a single instruction (skip, assignment, out, condition).
	Instr = ir.Instr
	// Var is a program variable.
	Var = ir.Var
	// Term is a 3-address right-hand side (at most one operator).
	Term = ir.Term
	// Operand is a variable or integer constant.
	Operand = ir.Operand
	// AssignPattern is an assignment pattern v := t.
	AssignPattern = ir.AssignPattern
	// Builder constructs graphs programmatically.
	Builder = ir.Builder
)

// NewBuilder returns a programmatic graph builder.
func NewBuilder(name string) *Builder { return ir.NewBuilder(name) }

// Parse reads a single graph in .fg syntax.
func Parse(src string) (*Graph, error) { return parse.Parse(src) }

// ParseFile reads a graph from the named .fg file.
func ParseFile(path string) (*Graph, error) { return parse.ParseFile(path) }

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *Graph { return parse.MustParse(src) }

// ParseNested reads a graph whose expressions may be arbitrarily nested
// (full precedence, parentheses) and canonically decomposes them into
// 3-address form along the inductive structure of the terms — the §6
// front-end transformation of Figure 18.
func ParseNested(src string) (*Graph, error) { return parse.ParseNested(src) }

// ParseProgram reads the structured mini-language (prog/if/else/while/do/
// break/continue with nested expressions) and desugars it into a flow
// graph ready for optimization. See the README for the grammar.
func ParseProgram(src string) (*Graph, error) { return parse.ParseProgram(src) }

// Format renders g in .fg syntax (round-trippable through Parse).
func Format(g *Graph) string { return printer.String(g) }

// Dot renders g as a Graphviz digraph.
func Dot(g *Graph) string { return printer.Dot(g) }

// Result reports the per-phase statistics of one Optimize run.
type Result = core.Result

// Optimize applies the paper's global algorithm to g in place:
// initialization (temporaries for every expression), the aht/rae
// assignment motion fixpoint, and the final flush. The result is
// expression-optimal in the universe of programs reachable by admissible
// EM and AM transformations (Theorem 5.2) and relatively assignment- and
// temporary-optimal (Theorems 5.3, 5.4).
func Optimize(g *Graph) Result { return core.Optimize(g) }

// BatchOptions tune OptimizeBatch: worker parallelism (default
// GOMAXPROCS), a per-graph timeout, and the result cache size.
type BatchOptions = engine.Options

// BatchReport aggregates one OptimizeBatch run: success/failure counts,
// cache hits and misses, per-phase wall time, AM iteration totals, and
// the per-graph results in input order.
type BatchReport = engine.Report

// BatchResult is the outcome of a single graph within a batch.
type BatchResult = engine.GraphResult

// BatchPassAggregate sums one pass's work across every computed job of a
// batch (see BatchReport.Passes).
type BatchPassAggregate = engine.PassAggregate

// BatchEngine is a reusable concurrent optimizer whose content-addressed
// result cache persists across batches. Construct with NewBatchEngine.
type BatchEngine = engine.Engine

// NewBatchEngine returns a reusable batch optimizer with the given
// options.
func NewBatchEngine(opts BatchOptions) *BatchEngine { return engine.New(opts) }

// OptimizeBatch runs the full three-phase global algorithm over many
// graphs concurrently: a worker pool of opts.Parallelism goroutines,
// per-graph panic recovery and deadlines, and a content-addressed result
// cache keyed by Graph.Fingerprint so duplicate graphs are optimized
// once. Inputs are never mutated; each BatchResult carries an optimized
// clone. Cancel ctx to abandon the remainder of a batch.
func OptimizeBatch(ctx context.Context, graphs []*Graph, opts BatchOptions) BatchReport {
	return engine.OptimizeBatch(ctx, graphs, opts)
}

// Failure taxonomy, re-exported from internal/fault: every failure a
// pipeline or batch run can produce matches exactly one of these sentinels
// under errors.Is, and PassOf extracts the offending pass's name and
// pipeline position.
var (
	// ErrNoFixpoint: an exhaustive fixpoint overran its termination backstop.
	ErrNoFixpoint = fault.ErrNoFixpoint
	// ErrInvalidGraph: a pass produced a structurally invalid graph.
	ErrInvalidGraph = fault.ErrInvalidGraph
	// ErrPassPanic: a pass panicked and was recovered by the pipeline.
	ErrPassPanic = fault.ErrPassPanic
	// ErrBudgetExceeded: a Budget cap (wall time, solver visits, AM
	// iterations) was exhausted.
	ErrBudgetExceeded = fault.ErrBudgetExceeded
	// ErrCanceled: the caller's context was canceled or its deadline
	// expired (also matches context.Canceled / context.DeadlineExceeded).
	ErrCanceled = fault.ErrCanceled
)

// PassOf extracts the pass name and pipeline index from a pipeline
// failure; ok is false when err carries no position.
func PassOf(err error) (pass string, index int, ok bool) { return fault.PassOf(err) }

// RecoveryPolicy selects what a pipeline does when a pass fails: stop with
// the typed error (RecoverFail), restore the last-good checkpoint and stop
// (RecoverRollback), or restore, skip the pass, and continue
// (RecoverSkip). See Pipeline.Recovery and BatchOptions.Recovery.
type RecoveryPolicy = pass.RecoveryPolicy

// The recovery policies.
const (
	RecoverFail     = pass.Fail
	RecoverRollback = pass.Rollback
	RecoverSkip     = pass.SkipAndContinue
)

// ParseRecoveryPolicy maps the amopt -on-error spelling ("fail",
// "rollback", "skip") to a policy.
func ParseRecoveryPolicy(s string) (RecoveryPolicy, error) { return pass.ParseRecoveryPolicy(s) }

// Budget caps the resources of one pipeline run (per-pass wall time,
// dataflow-solver visits, AM fixpoint rounds); violations surface as
// ErrBudgetExceeded instead of hangs. The zero value imposes no caps.
type Budget = fault.Budget

// BatchOutcome classifies one graph's fate in a batch: optimized (full
// pipeline), degraded (the recovery policy rolled back or skipped a
// failing pass; never cached), or failed.
type BatchOutcome = engine.Outcome

// The batch outcomes.
const (
	BatchOptimized = engine.OutcomeOptimized
	BatchDegraded  = engine.OutcomeDegraded
	BatchFailed    = engine.OutcomeFailed
)

// Pass names an individual transformation for Apply.
type Pass string

// The available passes.
const (
	// PassGlobAlg is the full global algorithm (same as Optimize).
	PassGlobAlg Pass = "globalg"
	// PassInit is the initialization phase alone (Figure 12).
	PassInit Pass = "init"
	// PassAM is unrestricted assignment motion (aht/rae fixpoint).
	PassAM Pass = "am"
	// PassAMRestricted is Dhamdhere-style "immediately profitable" AM.
	PassAMRestricted Pass = "am-restricted"
	// PassAHT is a single assignment-hoisting step (Table 1).
	PassAHT Pass = "aht"
	// PassRAE is a single redundant-assignment-elimination step (Table 2).
	PassRAE Pass = "rae"
	// PassEM is the expression-motion baseline (lazy code motion).
	PassEM Pass = "em"
	// PassMR is the original Morel/Renvoise 1979 partial redundancy
	// elimination [19] — the historical baseline without edge placement.
	PassMR Pass = "mr"
	// PassEMCP alternates EM with copy propagation to a fixpoint (§6).
	PassEMCP Pass = "emcp"
	// PassFlush is the final flush alone (Table 3).
	PassFlush Pass = "flush"
	// PassCopyProp is unified global copy+constant propagation: uses are
	// replaced through available copies whose source may be a variable or
	// a literal, and fully-literal terms fold in the same fixpoint
	// (Sreekala & Paleri: copy propagation subsumes constant propagation).
	PassCopyProp Pass = "copyprop"
	// PassGVN is global value numbering: recomputations of values already
	// available in some variable (or literal) become trivial copies, by
	// Kildall-style partition refinement over the value graph.
	PassGVN Pass = "gvn"
	// PassGVNEMCP prefixes every EM/CP round with GVN, so the shrunken
	// expression-pattern universe feeds the motion analyses — the
	// second-order GVN->AM interaction, measurable per round.
	PassGVNEMCP Pass = "gvn-emcp"
	// PassDCE is strong-liveness dead assignment elimination. It is NOT
	// part of any paper pipeline (§3: not semantics-preserving in
	// general) and exists for comparisons.
	PassDCE Pass = "dce"
	// PassPDE is partial dead code elimination (assignment sinking +
	// dce), the [17] companion transformation whose delayability analysis
	// this paper's hoistability analysis is the dual of. Like dce it is
	// opt-in: removing dead assignments can remove run-time errors.
	PassPDE Pass = "pde"
	// PassSplit splits critical edges (done implicitly by all motion
	// passes).
	PassSplit Pass = "split"
	// PassTidy bypasses empty synthetic blocks and merges straight-line
	// chains for presentation; run it last (it may re-create critical
	// edges, which the motion passes would simply re-split).
	PassTidy Pass = "tidy"
)

// Passes lists all pass names accepted by Apply, in a stable order. The
// registry (PassInfos) and this list agree; a test enforces it.
func Passes() []Pass {
	return []Pass{PassGlobAlg, PassInit, PassAM, PassAMRestricted, PassAHT,
		PassRAE, PassEM, PassMR, PassEMCP, PassFlush, PassCopyProp, PassGVN,
		PassGVNEMCP, PassDCE, PassPDE, PassSplit, PassTidy}
}

// PassInfo describes one registered pass: its name, a one-line
// description, and the paper reference it implements.
type PassInfo = pass.Info

// PassInfos lists every registered pass, sorted by name.
func PassInfos() []PassInfo { return pass.Infos() }

// PassStats is the uniform per-pass change report: a change count in the
// pass's natural unit and the number of fixpoint iterations it ran.
type PassStats = pass.Stats

// PassEvent is the instrumentation record of one executed pass within a
// pipeline run: wall time, instruction/block deltas, dataflow-solver work,
// and arena high-water growth.
type PassEvent = pass.Event

// PipelineReport aggregates one pipeline run (per-pass events, total wall
// time).
type PipelineReport = pass.Report

// Pipeline is an executable pass sequence with per-pass instrumentation,
// optional event hooks, and optional inter-pass invariant checking (Debug).
type Pipeline = pass.Pipeline

// NewPipeline resolves pass names against the registry and returns the
// pipeline. Unknown names fail with a did-you-mean suggestion.
func NewPipeline(passes ...Pass) (*Pipeline, error) {
	pl, err := pass.FromNames(passNames(passes)...)
	if err != nil {
		return nil, fmt.Errorf("assignmentmotion: %w", err)
	}
	return pl, nil
}

func passNames(passes []Pass) []string {
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = string(p)
	}
	return names
}

// Apply runs the named passes on g, in order. It is a thin wrapper over
// the pass pipeline: one analysis session is threaded through the whole
// sequence, so consecutive passes share the arena and universe caches.
func Apply(g *Graph, passes ...Pass) error {
	_, err := ApplyPipeline(g, passes...)
	return err
}

// ApplyPipeline is Apply returning the per-pass instrumentation report.
func ApplyPipeline(g *Graph, passes ...Pass) (PipelineReport, error) {
	pl, err := NewPipeline(passes...)
	if err != nil {
		return PipelineReport{}, err
	}
	rep, err := pl.Run(g)
	if err != nil {
		return rep, fmt.Errorf("assignmentmotion: %w", err)
	}
	return rep, nil
}

// NewSession returns an analysis session for callers that drive several
// pipelines over related graphs and want to share one arena and one set
// of caches (Pipeline.RunWith). Close it when done.
func NewSession() *analysis.Session { return analysis.NewSession() }

// RunEMCP alternates lazy code motion and copy propagation until the
// program stabilizes — the classical workaround of §6 (Figure 20(a)). The
// rounds share one analysis session (see internal/emcp).
func RunEMCP(g *Graph) {
	emcp.Run(g)
}

// ExecResult is the outcome of interpreting a program.
type ExecResult = interp.Result

// ExecCounts aggregates the dynamic cost measures of one execution.
type ExecCounts = interp.Counts

// Run executes g on a copy of env (missing variables are 0) with the
// given step budget (<= 0 selects a default) and reports the out-trace
// and cost counters.
func Run(g *Graph, env map[Var]int64, maxSteps int) ExecResult {
	return interp.Run(g, env, maxSteps)
}

// ExecOptions tune the execution semantics (e.g. trapping division).
type ExecOptions = interp.Options

// RunWith is Run with explicit semantic options. With TrapOnDivZero the
// footnote-3 distinction becomes observable: the motion passes preserve
// run-time errors, dce/pde may remove them.
func RunWith(g *Graph, env map[Var]int64, maxSteps int, opts ExecOptions) ExecResult {
	return interp.RunWith(g, env, maxSteps, opts)
}

// Static summarizes a program's static shape.
type Static = metrics.Static

// Measure computes static program metrics (sizes, temporaries, lifetimes).
func Measure(g *Graph) Static { return metrics.Measure(g) }

// EquivalenceReport describes a randomized equivalence check.
type EquivalenceReport = verify.Report

// Equivalent runs a and b on `runs` random environments derived from seed
// and compares their out-traces; it also aggregates both programs'
// dynamic costs for optimality comparisons.
func Equivalent(a, b *Graph, runs int, seed int64) EquivalenceReport {
	return verify.Equivalent(a, b, runs, seed)
}

// GenConfig tunes random program generation.
type GenConfig = cfggen.Config

// RandomStructured generates a seeded random structured program
// (sequences, diamonds, counter-guarded loops).
func RandomStructured(seed int64, cfg GenConfig) *Graph {
	return cfggen.Structured(seed, cfg)
}

// RandomUnstructured generates a seeded random unstructured program with
// forward branches and fuel-guarded back edges (may contain irreducible
// loops).
func RandomUnstructured(seed int64, cfg GenConfig) *Graph {
	return cfggen.Unstructured(seed, cfg)
}

// RandomEnvs builds deterministic random environments over vars.
func RandomEnvs(vars []Var, count int, seed int64) []map[Var]int64 {
	return metrics.RandomEnvs(vars, count, seed)
}

// ParseFun parses the typed front-end dialect (functions, let
// declarations, typed parameters) and lowers it — inlining every call —
// to a flow graph. Scope rules are enforced; full type checking is
// CompileFun's job.
func ParseFun(src string) (*Graph, error) { return parse.ParseFun(src) }

// TypeResult carries the inferred types, signatures, implicit inputs,
// and diagnostics of one typed-front-end unit.
type TypeResult = typeinference.Result

// TypeDiagnostic is one typed front-end diagnostic (position, stable
// code, severity, message).
type TypeDiagnostic = typeinference.Diagnostic

// CompileFun type-checks a typed front-end unit strictly and lowers it
// to a flow graph. The TypeResult is returned even when checking fails,
// so callers can render every diagnostic.
func CompileFun(src string) (*Graph, *TypeResult, error) { return typeinference.Compile(src) }

// InspectFun type-checks leniently: syntax errors still fail, but type
// and scope errors are collected as diagnostics alongside the partial
// results — the mode editors and linters want.
func InspectFun(src string) (*TypeResult, error) { return typeinference.Inspect(src) }

// CompiledProgram is a flow graph compiled to the flat register form
// executed by RunCompiled; compile once, run many times.
type CompiledProgram = bytecode.Program

// CompileBytecode compiles a valid flow graph for repeated execution.
func CompileBytecode(g *Graph) (*CompiledProgram, error) { return bytecode.Compile(g) }

// RunCompiled executes g through the compiled executor: same trace,
// counts, and flags as RunWith, several times faster on hot programs.
func RunCompiled(g *Graph, env map[Var]int64, maxSteps int, opts ExecOptions) (ExecResult, error) {
	return bytecode.Execute(g, env, maxSteps, opts)
}
