// Package assignmentmotion is a complete, from-scratch Go implementation
// of "The Power of Assignment Motion" (Jens Knoop, Oliver Rüthing,
// Bernhard Steffen; PLDI 1995): the uniform algorithm for eliminating
// partially redundant expressions AND assignments, capturing all
// second-order effects between expression motion (EM) and assignment
// motion (AM).
//
// The package is a facade over the building blocks in internal/:
//
//   - Parse / ParseFile read the ".fg" flow-graph language (see README).
//   - Optimize runs the paper's three-phase global algorithm:
//     initialization, exhaustive assignment motion, final flush.
//   - Apply composes individual passes (EM-only, AM-only, restricted AM,
//     copy propagation, ...) for comparisons.
//   - Run interprets a program and reports the dynamic cost measures the
//     paper's optimality theorems are stated in.
//   - Format / Dot render programs as source text or Graphviz.
//
// A minimal session:
//
//	g, err := assignmentmotion.Parse(src)
//	...
//	res := assignmentmotion.Optimize(g)
//	fmt.Println(assignmentmotion.Format(g), res.AM.Iterations)
package assignmentmotion

import (
	"context"
	"fmt"

	"assignmentmotion/internal/am"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/copyprop"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/dce"
	"assignmentmotion/internal/engine"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/lcm"
	"assignmentmotion/internal/metrics"
	"assignmentmotion/internal/mr"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/pde"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/verify"
)

// Core IR types, re-exported for downstream use.
type (
	// Graph is a control flow graph G = (N, E, s, e) of basic blocks.
	Graph = ir.Graph
	// Block is a basic block of instructions.
	Block = ir.Block
	// Instr is a single instruction (skip, assignment, out, condition).
	Instr = ir.Instr
	// Var is a program variable.
	Var = ir.Var
	// Term is a 3-address right-hand side (at most one operator).
	Term = ir.Term
	// Operand is a variable or integer constant.
	Operand = ir.Operand
	// AssignPattern is an assignment pattern v := t.
	AssignPattern = ir.AssignPattern
	// Builder constructs graphs programmatically.
	Builder = ir.Builder
)

// NewBuilder returns a programmatic graph builder.
func NewBuilder(name string) *Builder { return ir.NewBuilder(name) }

// Parse reads a single graph in .fg syntax.
func Parse(src string) (*Graph, error) { return parse.Parse(src) }

// ParseFile reads a graph from the named .fg file.
func ParseFile(path string) (*Graph, error) { return parse.ParseFile(path) }

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *Graph { return parse.MustParse(src) }

// ParseNested reads a graph whose expressions may be arbitrarily nested
// (full precedence, parentheses) and canonically decomposes them into
// 3-address form along the inductive structure of the terms — the §6
// front-end transformation of Figure 18.
func ParseNested(src string) (*Graph, error) { return parse.ParseNested(src) }

// ParseProgram reads the structured mini-language (prog/if/else/while/do/
// break/continue with nested expressions) and desugars it into a flow
// graph ready for optimization. See the README for the grammar.
func ParseProgram(src string) (*Graph, error) { return parse.ParseProgram(src) }

// Format renders g in .fg syntax (round-trippable through Parse).
func Format(g *Graph) string { return printer.String(g) }

// Dot renders g as a Graphviz digraph.
func Dot(g *Graph) string { return printer.Dot(g) }

// Result reports the per-phase statistics of one Optimize run.
type Result = core.Result

// Optimize applies the paper's global algorithm to g in place:
// initialization (temporaries for every expression), the aht/rae
// assignment motion fixpoint, and the final flush. The result is
// expression-optimal in the universe of programs reachable by admissible
// EM and AM transformations (Theorem 5.2) and relatively assignment- and
// temporary-optimal (Theorems 5.3, 5.4).
func Optimize(g *Graph) Result { return core.Optimize(g) }

// BatchOptions tune OptimizeBatch: worker parallelism (default
// GOMAXPROCS), a per-graph timeout, and the result cache size.
type BatchOptions = engine.Options

// BatchReport aggregates one OptimizeBatch run: success/failure counts,
// cache hits and misses, per-phase wall time, AM iteration totals, and
// the per-graph results in input order.
type BatchReport = engine.Report

// BatchResult is the outcome of a single graph within a batch.
type BatchResult = engine.GraphResult

// BatchEngine is a reusable concurrent optimizer whose content-addressed
// result cache persists across batches. Construct with NewBatchEngine.
type BatchEngine = engine.Engine

// NewBatchEngine returns a reusable batch optimizer with the given
// options.
func NewBatchEngine(opts BatchOptions) *BatchEngine { return engine.New(opts) }

// OptimizeBatch runs the full three-phase global algorithm over many
// graphs concurrently: a worker pool of opts.Parallelism goroutines,
// per-graph panic recovery and deadlines, and a content-addressed result
// cache keyed by Graph.Fingerprint so duplicate graphs are optimized
// once. Inputs are never mutated; each BatchResult carries an optimized
// clone. Cancel ctx to abandon the remainder of a batch.
func OptimizeBatch(ctx context.Context, graphs []*Graph, opts BatchOptions) BatchReport {
	return engine.OptimizeBatch(ctx, graphs, opts)
}

// Pass names an individual transformation for Apply.
type Pass string

// The available passes.
const (
	// PassGlobAlg is the full global algorithm (same as Optimize).
	PassGlobAlg Pass = "globalg"
	// PassInit is the initialization phase alone (Figure 12).
	PassInit Pass = "init"
	// PassAM is unrestricted assignment motion (aht/rae fixpoint).
	PassAM Pass = "am"
	// PassAMRestricted is Dhamdhere-style "immediately profitable" AM.
	PassAMRestricted Pass = "am-restricted"
	// PassEM is the expression-motion baseline (lazy code motion).
	PassEM Pass = "em"
	// PassMR is the original Morel/Renvoise 1979 partial redundancy
	// elimination [19] — the historical baseline without edge placement.
	PassMR Pass = "mr"
	// PassEMCP alternates EM with copy propagation to a fixpoint (§6).
	PassEMCP Pass = "emcp"
	// PassFlush is the final flush alone (Table 3).
	PassFlush Pass = "flush"
	// PassCopyProp is global copy propagation.
	PassCopyProp Pass = "copyprop"
	// PassDCE is strong-liveness dead assignment elimination. It is NOT
	// part of any paper pipeline (§3: not semantics-preserving in
	// general) and exists for comparisons.
	PassDCE Pass = "dce"
	// PassPDE is partial dead code elimination (assignment sinking +
	// dce), the [17] companion transformation whose delayability analysis
	// this paper's hoistability analysis is the dual of. Like dce it is
	// opt-in: removing dead assignments can remove run-time errors.
	PassPDE Pass = "pde"
	// PassSplit splits critical edges (done implicitly by all motion
	// passes).
	PassSplit Pass = "split"
	// PassTidy bypasses empty synthetic blocks and merges straight-line
	// chains for presentation; run it last (it may re-create critical
	// edges, which the motion passes would simply re-split).
	PassTidy Pass = "tidy"
)

// Passes lists all pass names accepted by Apply, in a stable order.
func Passes() []Pass {
	return []Pass{PassGlobAlg, PassInit, PassAM, PassAMRestricted, PassEM,
		PassMR, PassEMCP, PassFlush, PassCopyProp, PassDCE, PassPDE, PassSplit, PassTidy}
}

// Apply runs the named passes on g, in order.
func Apply(g *Graph, passes ...Pass) error {
	for _, p := range passes {
		switch p {
		case PassGlobAlg:
			core.Optimize(g)
		case PassInit:
			g.SplitCriticalEdges()
			core.Initialize(g)
		case PassAM:
			am.Run(g)
		case PassAMRestricted:
			am.RunRestricted(g)
		case PassEM:
			lcm.Run(g)
		case PassMR:
			mr.Run(g)
		case PassEMCP:
			RunEMCP(g)
		case PassFlush:
			flush.Run(g)
		case PassCopyProp:
			copyprop.Run(g)
		case PassDCE:
			dce.Run(g)
		case PassPDE:
			pde.Run(g)
		case PassSplit:
			g.SplitCriticalEdges()
		case PassTidy:
			g.Tidy()
		default:
			return fmt.Errorf("assignmentmotion: unknown pass %q", p)
		}
	}
	return nil
}

// RunEMCP alternates lazy code motion and copy propagation until the
// program stabilizes — the classical workaround of §6 (Figure 20(a)).
func RunEMCP(g *Graph) {
	for i := 0; i < 16; i++ {
		before := g.Encode()
		lcm.Run(g)
		copyprop.Run(g)
		if g.Encode() == before {
			return
		}
	}
}

// ExecResult is the outcome of interpreting a program.
type ExecResult = interp.Result

// ExecCounts aggregates the dynamic cost measures of one execution.
type ExecCounts = interp.Counts

// Run executes g on a copy of env (missing variables are 0) with the
// given step budget (<= 0 selects a default) and reports the out-trace
// and cost counters.
func Run(g *Graph, env map[Var]int64, maxSteps int) ExecResult {
	return interp.Run(g, env, maxSteps)
}

// ExecOptions tune the execution semantics (e.g. trapping division).
type ExecOptions = interp.Options

// RunWith is Run with explicit semantic options. With TrapOnDivZero the
// footnote-3 distinction becomes observable: the motion passes preserve
// run-time errors, dce/pde may remove them.
func RunWith(g *Graph, env map[Var]int64, maxSteps int, opts ExecOptions) ExecResult {
	return interp.RunWith(g, env, maxSteps, opts)
}

// Static summarizes a program's static shape.
type Static = metrics.Static

// Measure computes static program metrics (sizes, temporaries, lifetimes).
func Measure(g *Graph) Static { return metrics.Measure(g) }

// EquivalenceReport describes a randomized equivalence check.
type EquivalenceReport = verify.Report

// Equivalent runs a and b on `runs` random environments derived from seed
// and compares their out-traces; it also aggregates both programs'
// dynamic costs for optimality comparisons.
func Equivalent(a, b *Graph, runs int, seed int64) EquivalenceReport {
	return verify.Equivalent(a, b, runs, seed)
}

// GenConfig tunes random program generation.
type GenConfig = cfggen.Config

// RandomStructured generates a seeded random structured program
// (sequences, diamonds, counter-guarded loops).
func RandomStructured(seed int64, cfg GenConfig) *Graph {
	return cfggen.Structured(seed, cfg)
}

// RandomUnstructured generates a seeded random unstructured program with
// forward branches and fuel-guarded back edges (may contain irreducible
// loops).
func RandomUnstructured(seed int64, cfg GenConfig) *Graph {
	return cfggen.Unstructured(seed, cfg)
}

// RandomEnvs builds deterministic random environments over vars.
func RandomEnvs(vars []Var, count int, seed int64) []map[Var]int64 {
	return metrics.RandomEnvs(vars, count, seed)
}
