module assignmentmotion

go 1.22
