// Command benchjson converts `go test -bench` output on stdin into the
// machine-readable benchmark document layout of the repo's BENCH_*.json
// files. Repeats from -count are collapsed to the minimum ns/op per
// benchmark (external load only inflates a shared-CPU measurement, so the
// smallest observation is the closest to the true cost — run with
// -count=10 and let the tool pick).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSolverOrder -benchtime 300x -count 10 -benchmem . \
//	  | go run ./cmd/benchjson -description "solver rows" -note "4-core CI runner" > BENCH_dataflow.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"assignmentmotion/internal/benchfmt"
)

func main() {
	description := flag.String("description", "", "document description field")
	note := flag.String("note", "", "environment note (host caveats, core count)")
	date := flag.String("date", time.Now().Format("2006-01-02"), "document date")
	flag.Parse()

	rows, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark rows on stdin")
		os.Exit(1)
	}
	doc := benchfmt.Doc{
		Description: *description,
		Date:        *date,
		Environment: benchfmt.Environment{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPU:        cpuModel(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Note:       *note,
		},
		Rows: benchfmt.Aggregate(rows),
	}
	out, err := doc.MarshalJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}

// cpuModel reads the CPU model name from /proc/cpuinfo, best effort —
// the field is informational and an empty string is acceptable on hosts
// without it.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
