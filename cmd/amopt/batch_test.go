package main

import (
	"encoding/json"
	"errors"

	"assignmentmotion"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const batchSrcA = `
graph a {
  entry s
  exit e
  block s {
    x := u + v
    y := u + v
    goto e
  }
  block e { out(x, y) }
}
`

const batchSrcB = `
graph b {
  entry s
  exit e
  block s {
    p := m * n
    if p > m then t else e
  }
  block t {
    q := m * n
    goto e
  }
  block e { out(p, q) }
}
`

func writeBatchDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range map[string]string{"a.fg": batchSrcA, "b.fg": batchSrcB, "a_dup.fg": batchSrcA} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestBatchDirectory(t *testing.T) {
	dir := writeBatchDir(t)
	out, err := runCLI(t, "-stats", "-parallel", "2", "-verify", "6", dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# batch: 3 graphs, 3 ok (0 degraded), 0 failed", "cache=hit", "am iterations:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBatchMultipleFiles(t *testing.T) {
	dir := writeBatchDir(t)
	a, b := filepath.Join(dir, "a.fg"), filepath.Join(dir, "b.fg")
	out, err := runCLI(t, "-parallel", "1", a, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cache=hit") {
		t.Errorf("duplicate file not served from cache:\n%s", out)
	}
	if strings.Count(out, " optimized ") != 3 {
		t.Errorf("expected 3 optimized lines:\n%s", out)
	}
}

func TestBatchJSON(t *testing.T) {
	dir := writeBatchDir(t)
	out, err := runCLI(t, "-json", "-timeout", "10s", dir)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Graphs    int `json:"graphs"`
		Succeeded int `json:"succeeded"`
		Results   []struct {
			Name    string `json:"name"`
			File    string `json:"file"`
			Program string `json:"program"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out)
	}
	if rep.Graphs != 3 || rep.Succeeded != 3 || len(rep.Results) != 3 {
		t.Fatalf("report: %+v", rep)
	}
	// a.fg: the redundant u+v must be computed once.
	if prog := rep.Results[0].Program; !strings.Contains(prog, "h1 := u + v") {
		t.Errorf("optimized program missing hoisted temporary:\n%s", prog)
	}
}

func TestBatchRejectsUnsupportedFlags(t *testing.T) {
	dir := writeBatchDir(t)
	// Custom pipelines are a batch feature now; only unknown names fail,
	// with a did-you-mean suggestion.
	if _, err := runCLI(t, "-pass", "em", dir); err != nil {
		t.Errorf("custom pipeline rejected in batch mode: %v", err)
	}
	if _, err := runCLI(t, "-pass", "emc", dir); err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Errorf("unknown pass: want did-you-mean error, got %v", err)
	}
	if _, err := runCLI(t, "-dot", dir); err == nil {
		t.Error("-dot accepted in batch mode")
	}
	if _, err := runCLI(t, "-run", "a=1", dir); err == nil {
		t.Error("-run accepted in batch mode")
	}
	a := filepath.Join(dir, "a.fg")
	if _, err := runCLI(t, a, "-"); err == nil {
		t.Error("stdin accepted in batch mode")
	}
}

func TestBatchEmptyDirectory(t *testing.T) {
	if _, err := runCLI(t, t.TempDir()); err == nil || !strings.Contains(err.Error(), "no .fg files") {
		t.Errorf("err = %v", err)
	}
}

func TestBatchParseErrorNamesFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.fg")
	if err := os.WriteFile(bad, []byte("graph oops {"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.fg")
	if err := os.WriteFile(good, []byte(batchSrcA), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, good, bad); err == nil || !strings.Contains(err.Error(), "bad.fg") {
		t.Errorf("err = %v", err)
	}
}

// exitCodeOf extracts the exit code run() would map an error to.
func exitCodeOf(err error) int {
	if err == nil {
		return exitOK
	}
	var ee *exitError
	if errors.As(err, &ee) {
		return ee.code
	}
	return exitUsage
}

func TestExitCodes(t *testing.T) {
	dir := writeBatchDir(t)
	a := filepath.Join(dir, "a.fg")
	bad := filepath.Join(dir, "bad.fg")
	if err := os.WriteFile(bad, []byte("graph oops {"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := runCLI(t, a)
	if code := exitCodeOf(err); code != exitOK {
		t.Errorf("clean run: exit %d (%v), want %d", code, err, exitOK)
	}
	_, err = runCLI(t, "-pass", "emc", a)
	if code := exitCodeOf(err); code != exitUsage {
		t.Errorf("unknown pass: exit %d (%v), want %d", code, err, exitUsage)
	}
	_, err = runCLI(t, "-on-error", "explode", a)
	if code := exitCodeOf(err); code != exitUsage {
		t.Errorf("bad -on-error: exit %d (%v), want %d", code, err, exitUsage)
	}
	_, err = runCLI(t, bad)
	if code := exitCodeOf(err); code != exitParse {
		t.Errorf("parse error (single): exit %d (%v), want %d", code, err, exitParse)
	}
	_, err = runCLI(t, a, bad)
	if code := exitCodeOf(err); code != exitParse {
		t.Errorf("parse error (batch): exit %d (%v), want %d", code, err, exitParse)
	}
}

// TestExitCodePrecedence pins the exit-code contract for mixed batches:
// failure (exit 3) beats degradation (exit 4). A batch holding both
// failed and degraded graphs must exit 3 — degraded results are still
// valid programs, failed ones produced nothing, and the exit code
// reports the worst outcome.
func TestExitCodePrecedence(t *testing.T) {
	pol := assignmentmotion.RecoverSkip
	cases := []struct {
		name             string
		failed, degraded int
		want             int
	}{
		{"clean", 0, 0, exitOK},
		{"degraded-only", 0, 2, exitDegraded},
		{"failed-only", 2, 0, exitOptimizeFailed},
		{"failed-beats-degraded", 1, 3, exitOptimizeFailed},
		{"all-failed-plus-degraded", 5, 5, exitOptimizeFailed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := batchExitError(tc.failed, tc.degraded, 10, pol)
			if code := exitCodeOf(err); code != tc.want {
				t.Errorf("batchExitError(failed=%d, degraded=%d) -> exit %d; want %d",
					tc.failed, tc.degraded, code, tc.want)
			}
		})
	}
}
