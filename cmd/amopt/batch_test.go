package main

import (
	"encoding/json"
	"errors"
	"fmt"

	"assignmentmotion"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const batchSrcA = `
graph a {
  entry s
  exit e
  block s {
    x := u + v
    y := u + v
    goto e
  }
  block e { out(x, y) }
}
`

const batchSrcB = `
graph b {
  entry s
  exit e
  block s {
    p := m * n
    if p > m then t else e
  }
  block t {
    q := m * n
    goto e
  }
  block e { out(p, q) }
}
`

func writeBatchDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range map[string]string{"a.fg": batchSrcA, "b.fg": batchSrcB, "a_dup.fg": batchSrcA} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestBatchDirectory(t *testing.T) {
	dir := writeBatchDir(t)
	out, err := runCLI(t, "-stats", "-parallel", "2", "-verify", "6", dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# batch: 3 graphs, 3 ok (0 degraded), 0 failed", "cache=hit", "am iterations:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBatchMultipleFiles(t *testing.T) {
	dir := writeBatchDir(t)
	a, b := filepath.Join(dir, "a.fg"), filepath.Join(dir, "b.fg")
	out, err := runCLI(t, "-parallel", "1", a, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cache=hit") {
		t.Errorf("duplicate file not served from cache:\n%s", out)
	}
	if strings.Count(out, " optimized ") != 3 {
		t.Errorf("expected 3 optimized lines:\n%s", out)
	}
}

func TestBatchJSON(t *testing.T) {
	dir := writeBatchDir(t)
	out, err := runCLI(t, "-json", "-timeout", "10s", dir)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Graphs    int `json:"graphs"`
		Succeeded int `json:"succeeded"`
		Results   []struct {
			Name    string `json:"name"`
			File    string `json:"file"`
			Program string `json:"program"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out)
	}
	if rep.Graphs != 3 || rep.Succeeded != 3 || len(rep.Results) != 3 {
		t.Fatalf("report: %+v", rep)
	}
	// a.fg: the redundant u+v must be computed once.
	if prog := rep.Results[0].Program; !strings.Contains(prog, "h1 := u + v") {
		t.Errorf("optimized program missing hoisted temporary:\n%s", prog)
	}
}

func TestBatchRejectsUnsupportedFlags(t *testing.T) {
	dir := writeBatchDir(t)
	// Custom pipelines are a batch feature now; only unknown names fail,
	// with a did-you-mean suggestion.
	if _, err := runCLI(t, "-pass", "em", dir); err != nil {
		t.Errorf("custom pipeline rejected in batch mode: %v", err)
	}
	if _, err := runCLI(t, "-pass", "emc", dir); err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Errorf("unknown pass: want did-you-mean error, got %v", err)
	}
	if _, err := runCLI(t, "-dot", dir); err == nil {
		t.Error("-dot accepted in batch mode")
	}
	if _, err := runCLI(t, "-run", "a=1", dir); err == nil {
		t.Error("-run accepted in batch mode")
	}
	a := filepath.Join(dir, "a.fg")
	if _, err := runCLI(t, a, "-"); err == nil {
		t.Error("stdin accepted in batch mode")
	}
}

func TestBatchEmptyDirectory(t *testing.T) {
	if _, err := runCLI(t, t.TempDir()); err == nil || !strings.Contains(err.Error(), "no .fg files") {
		t.Errorf("err = %v", err)
	}
}

func TestBatchParseErrorNamesFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.fg")
	if err := os.WriteFile(bad, []byte("graph oops {"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.fg")
	if err := os.WriteFile(good, []byte(batchSrcA), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, good, bad); err == nil || !strings.Contains(err.Error(), "bad.fg") {
		t.Errorf("err = %v", err)
	}
}

// exitCodeOf extracts the exit code run() would map an error to.
func exitCodeOf(err error) int {
	if err == nil {
		return exitOK
	}
	var ee *exitError
	if errors.As(err, &ee) {
		return ee.code
	}
	return exitUsage
}

func TestExitCodes(t *testing.T) {
	dir := writeBatchDir(t)
	a := filepath.Join(dir, "a.fg")
	bad := filepath.Join(dir, "bad.fg")
	if err := os.WriteFile(bad, []byte("graph oops {"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := runCLI(t, a)
	if code := exitCodeOf(err); code != exitOK {
		t.Errorf("clean run: exit %d (%v), want %d", code, err, exitOK)
	}
	_, err = runCLI(t, "-pass", "emc", a)
	if code := exitCodeOf(err); code != exitUsage {
		t.Errorf("unknown pass: exit %d (%v), want %d", code, err, exitUsage)
	}
	_, err = runCLI(t, "-on-error", "explode", a)
	if code := exitCodeOf(err); code != exitUsage {
		t.Errorf("bad -on-error: exit %d (%v), want %d", code, err, exitUsage)
	}
	_, err = runCLI(t, bad)
	if code := exitCodeOf(err); code != exitParse {
		t.Errorf("parse error (single): exit %d (%v), want %d", code, err, exitParse)
	}
	_, err = runCLI(t, a, bad)
	if code := exitCodeOf(err); code != exitParse {
		t.Errorf("parse error (batch): exit %d (%v), want %d", code, err, exitParse)
	}
}

// TestExitCodePrecedence pins the exit-code contract for mixed batches:
// failure (exit 3) beats degradation (exit 4). A batch holding both
// failed and degraded graphs must exit 3 — degraded results are still
// valid programs, failed ones produced nothing, and the exit code
// reports the worst outcome.
func TestExitCodePrecedence(t *testing.T) {
	pol := assignmentmotion.RecoverSkip
	cases := []struct {
		name             string
		failed, degraded int
		want             int
	}{
		{"clean", 0, 0, exitOK},
		{"degraded-only", 0, 2, exitDegraded},
		{"failed-only", 2, 0, exitOptimizeFailed},
		{"failed-beats-degraded", 1, 3, exitOptimizeFailed},
		{"all-failed-plus-degraded", 5, 5, exitOptimizeFailed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := batchExitError(tc.failed, tc.degraded, 10, pol)
			if code := exitCodeOf(err); code != tc.want {
				t.Errorf("batchExitError(failed=%d, degraded=%d) -> exit %d; want %d",
					tc.failed, tc.degraded, code, tc.want)
			}
		})
	}
}

// diamondFG builds the region-contained diamond family (see
// internal/incr) so the -incr-stats flow can be driven end-to-end from
// the CLI: base first, then a variant edited inside one region.
func diamondFG(nd, edit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph diamonds {\n  entry s0\n  exit done\n")
	fmt.Fprintf(&b, "  block s0 {\n    pre := u + v\n    goto d0\n  }\n")
	for i := 0; i < nd; i++ {
		fmt.Fprintf(&b, "  block d%d {\n    if u + v < 7 then a%d else b%d\n  }\n", i, i, i)
		armY := fmt.Sprintf("y%d := p + q", i)
		if i == edit {
			armY = fmt.Sprintf("y%d := x%d", i, i)
		}
		fmt.Fprintf(&b, "  block a%d {\n    x%d := p + q\n    %s\n    goto j%d\n  }\n", i, i, armY, i)
		fmt.Fprintf(&b, "  block b%d {\n    z%d := p - q\n    goto j%d\n  }\n", i, i, i)
		next := fmt.Sprintf("d%d", i+1)
		if i == nd-1 {
			next = "done"
		}
		fmt.Fprintf(&b, "  block j%d {\n    w%d := x%d\n    goto %s\n  }\n", i, i, i, next)
	}
	fmt.Fprintf(&b, "  block done { out(u) }\n}\n")
	return b.String()
}

func TestBatchIncrStats(t *testing.T) {
	dir := t.TempDir()
	// Names sort base first; -parallel 1 keeps that order, so the edited
	// variant finds the base's recording.
	if err := os.WriteFile(filepath.Join(dir, "a_base.fg"), []byte(diamondFG(30, -1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b_edit.fg"), []byte(diamondFG(30, 12)), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-stats", "-incr-stats", "-parallel", "1", "-verify", "4", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cache=region") {
		t.Errorf("edited file not served by the region tier:\n%s", out)
	}
	if !strings.Contains(out, "# incr: 1 region hits") {
		t.Errorf("missing incr summary line:\n%s", out)
	}

	// The same corpus through -json carries the region accounting.
	jout, err := runCLI(t, "-json", "-incr-stats", "-parallel", "1", dir)
	if err != nil {
		t.Fatal(err)
	}
	var rep batchJSON
	if err := json.Unmarshal([]byte(jout), &rep); err != nil {
		t.Fatalf("bad -json output: %v", err)
	}
	if rep.RegionHits != 1 || rep.RegionsRecomputed != 1 || rep.RegionsReused < 2 {
		t.Errorf("json region accounting: hits=%d reused=%d recomputed=%d",
			rep.RegionHits, rep.RegionsReused, rep.RegionsRecomputed)
	}
	var tierSeen bool
	for _, r := range rep.Results {
		if r.CacheTier == "region" {
			tierSeen = true
			if r.RegionsTotal < 3 || r.RegionsReused != r.RegionsTotal-1 {
				t.Errorf("per-graph region accounting: %+v", r)
			}
		}
	}
	if !tierSeen {
		t.Error("-json results carry no region-tier hit")
	}
}
