package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestList(t *testing.T) {
	out, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"globalg", "am-restricted", "running", "fig08"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -list output", want)
		}
	}
}

func TestFigurePipeline(t *testing.T) {
	out, err := runCLI(t, "-figure", "running", "-pass", "globalg")
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 15 result.
	for _, want := range []string{"h1 := c + d", "x := y + z", "if h2 > y + i then b3 else b4", "x := h1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestInitPhaseOutput(t *testing.T) {
	out, err := runCLI(t, "-figure", "running", "-pass", "init")
	if err != nil {
		t.Fatal(err)
	}
	// Figure 12: decomposed condition.
	for _, want := range []string{"h2 := x + z", "h3 := y + i", "if h2 > h3 then b3 else b4"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFileInputWithVerifyMetricsRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.fg")
	src := `
graph p {
  entry a
  exit e
  block a {
    x := u + v
    y := u + v
    goto e
  }
  block e { out(x, y) }
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-pass", "globalg", "-metrics", "-verify", "10", "-run", "u=2,v=3", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# before:", "# after:", "# verified on 10 inputs", "# trace: [5 5]", "exprEvals=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	out, err := runCLI(t, "-figure", "fig08", "-pass", "am", "-json", "-verify", "5", "-run", "x=1,y=2,z=3,c=-1")
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out)
	}
	for _, key := range []string{"graph", "before", "after", "verifiedInputs", "trace", "program"} {
		if _, ok := report[key]; !ok {
			t.Errorf("missing key %q:\n%s", key, out)
		}
	}
	if report["graph"] != "fig08" {
		t.Errorf("graph = %v", report["graph"])
	}
}

func TestDotOutput(t *testing.T) {
	out, err := runCLI(t, "-figure", "fig01", "-pass", "none", "-dot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph \"fig01\"") {
		t.Errorf("not dot output:\n%s", out)
	}
}

func TestNestedInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "n.fg")
	src := `
graph n {
  entry a
  exit e
  block a {
    x := p + q + r
    goto e
  }
  block e { out(x) }
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Without -nested: rejected.
	if _, err := runCLI(t, "-pass", "none", path); err == nil {
		t.Error("nested expression accepted without -nested")
	}
	// With -nested: decomposed.
	out, err := runCLI(t, "-pass", "none", "-nested", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "t1 := p + q") || !strings.Contains(out, "x := t1 + r") {
		t.Errorf("decomposition missing:\n%s", out)
	}
}

func TestProgInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.prog")
	src := `
prog p {
  s := 0
  i := 0
  while i < 3 {
    s := s + u * v
    i := i + 1
  }
  out(s)
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-prog", "-pass", "globalg,tidy", "-verify", "8", "-run", "u=2,v=3", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# trace: [18]") {
		t.Errorf("missing trace:\n%s", out)
	}
	// The loop-invariant u*v must be hoisted: 3 iterations evaluate it
	// once, plus the counter increments and compares.
	if !strings.Contains(out, "# verified on 8 inputs") {
		t.Errorf("missing verification:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCLI(t, "-figure", "nope"); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Errorf("err = %v", err)
	}
	if _, err := runCLI(t, "-figure", "running", "-pass", "bogus"); err == nil || !strings.Contains(err.Error(), "unknown pass") {
		t.Errorf("err = %v", err)
	}
	if _, err := runCLI(t); err == nil {
		t.Error("missing input accepted")
	}
	if _, err := runCLI(t, "-run", "a=b", "-figure", "fig01"); err == nil {
		t.Error("bad env accepted")
	}
	if _, err := runCLI(t, "/nonexistent/file.fg"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestEveryPassRunsOnEveryFigure(t *testing.T) {
	for _, fig := range []string{"fig01", "fig02", "fig07", "fig08", "fig10", "fig16", "fig18", "running"} {
		for _, pass := range []string{"globalg", "em", "emcp", "am", "am-restricted", "copyprop", "dce", "pde", "init", "flush", "split"} {
			if _, err := runCLI(t, "-figure", fig, "-pass", pass, "-verify", "4"); err != nil {
				if pass == "dce" || pass == "pde" {
					continue // may alter trap behaviour; -verify can flag them
				}
				t.Errorf("%s/%s: %v", fig, pass, err)
			}
		}
	}
}

func TestPassesListOutput(t *testing.T) {
	out, err := runCLI(t, "-passes", "list")
	if err != nil {
		t.Fatal(err)
	}
	// Every registered pass appears, first on its line, in sorted order.
	want := []string{
		"aht", "am", "am-restricted", "copyprop", "dce", "em", "emcp",
		"flush", "globalg", "gvn", "gvn-emcp", "init", "mr", "pde",
		"rae", "split", "tidy",
	}
	var names []string
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 0 || strings.HasPrefix(f[0], "[") {
			continue // reference continuation line
		}
		names = append(names, f[0])
	}
	if len(names) != len(want) {
		t.Fatalf("-passes list shows %d passes, want %d:\n%s", len(names), len(want), out)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("-passes list position %d: got %q, want %q", i, names[i], want[i])
		}
	}
	// The new family's descriptions carry their paper references.
	for _, ref := range []string{"1303.1880", "2207.03894"} {
		if !strings.Contains(out, ref) {
			t.Errorf("missing reference %q in -passes list output:\n%s", ref, out)
		}
	}
}
