package main

// Batch mode: amopt pointed at several .fg files or at directories runs
// the concurrent engine (assignmentmotion.OptimizeBatch) instead of the
// single-file loop. Any registry pipeline works: the default is the full
// global algorithm, and -pass/-passes swaps in an arbitrary sequence,
// served by the same worker pool and result cache.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"assignmentmotion"
)

// batchInputs decides whether the positional arguments select batch mode
// (more than one path, or any path that is a directory) and expands
// directories into their .fg files, sorted.
func batchInputs(args []string, figure string, random int64) (bool, []string, error) {
	if figure != "" || random >= 0 {
		return false, nil, nil
	}
	hasDir := false
	for _, a := range args {
		if a == "-" {
			continue
		}
		if info, err := os.Stat(a); err == nil && info.IsDir() {
			hasDir = true
		}
	}
	if len(args) <= 1 && !hasDir {
		return false, nil, nil
	}
	var files []string
	for _, a := range args {
		if a == "-" {
			return true, nil, fmt.Errorf("stdin (\"-\") is not supported in batch mode")
		}
		info, err := os.Stat(a)
		if err != nil {
			return true, nil, err
		}
		if !info.IsDir() {
			files = append(files, a)
			continue
		}
		entries, err := os.ReadDir(a)
		if err != nil {
			return true, nil, err
		}
		var found []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".fg") {
				found = append(found, filepath.Join(a, e.Name()))
			}
		}
		if len(found) == 0 {
			return true, nil, fmt.Errorf("%s: no .fg files", a)
		}
		sort.Strings(found)
		files = append(files, found...)
	}
	return true, files, nil
}

type batchConfig struct {
	passSpec string
	nested   bool
	prog     bool
	fun      bool
	parallel int
	timeout  time.Duration
	verify   int
	stats    bool
	incr     bool
	json     bool
	dot      bool
	run      string
	trace    bool
	recovery assignmentmotion.RecoveryPolicy
}

type batchGraphJSON struct {
	Name              string   `json:"name"`
	File              string   `json:"file"`
	Outcome           string   `json:"outcome"`
	Error             string   `json:"error,omitempty"`
	Failures          []string `json:"failures,omitempty"`
	CacheHit          bool     `json:"cacheHit"`
	CacheTier         string   `json:"cacheTier,omitempty"`
	RegionsTotal      int      `json:"regionsTotal,omitempty"`
	RegionsReused     int      `json:"regionsReused,omitempty"`
	RegionsRecomputed int      `json:"regionsRecomputed,omitempty"`
	AMIterations      int      `json:"amIterations"`
	Wall              string   `json:"wall"`
	Verified          int      `json:"verifiedInputs,omitempty"`
	Program           string   `json:"program,omitempty"`
}

type batchJSON struct {
	Passes            []assignmentmotion.BatchPassAggregate `json:"passes,omitempty"`
	Graphs            int                                   `json:"graphs"`
	Succeeded         int                                   `json:"succeeded"`
	Degraded          int                                   `json:"degraded"`
	Failed            int                                   `json:"failed"`
	CacheHits         int                                   `json:"cacheHits"`
	CacheMisses       int                                   `json:"cacheMisses"`
	RegionHits        int                                   `json:"regionHits,omitempty"`
	RegionsReused     int                                   `json:"regionsReused,omitempty"`
	RegionsRecomputed int                                   `json:"regionsRecomputed,omitempty"`
	Parallelism       int                                   `json:"parallelism"`
	Wall              string                                `json:"wall"`
	PhaseInit         string                                `json:"phaseInit"`
	PhaseAM           string                                `json:"phaseAm"`
	PhaseFlush        string                                `json:"phaseFlush"`
	AMIterations      int                                   `json:"amIterations"`
	MaxAMIters        int                                   `json:"maxAmIterations"`
	Results           []batchGraphJSON                      `json:"results"`
}

func runBatch(files []string, cfg batchConfig, out io.Writer) error {
	if cfg.dot {
		return fmt.Errorf("-dot is not supported in batch mode")
	}
	if cfg.run != "" {
		return fmt.Errorf("-run is not supported in batch mode")
	}
	// The engine's default pipeline IS the global algorithm; anything else
	// is resolved against the registry up front so an unknown name fails
	// once with its did-you-mean message instead of once per graph.
	var pipeline []string
	for _, p := range parsePasses(cfg.passSpec) {
		pipeline = append(pipeline, string(p))
	}
	if len(pipeline) == 1 && pipeline[0] == "globalg" {
		pipeline = nil
	}
	if len(pipeline) > 0 {
		if _, err := assignmentmotion.NewPipeline(parsePasses(cfg.passSpec)...); err != nil {
			return err
		}
	}

	graphs := make([]*assignmentmotion.Graph, len(files))
	for i, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var g *assignmentmotion.Graph
		switch {
		case cfg.fun:
			g, _, err = assignmentmotion.CompileFun(string(data))
		case cfg.prog:
			g, err = assignmentmotion.ParseProgram(string(data))
		case cfg.nested:
			g, err = assignmentmotion.ParseNested(string(data))
		default:
			g, err = assignmentmotion.Parse(string(data))
		}
		if err != nil {
			return exitf(exitParse, "%s: %v", path, err)
		}
		graphs[i] = g
	}

	opts := assignmentmotion.BatchOptions{
		Parallelism: cfg.parallel,
		Timeout:     cfg.timeout,
		Passes:      pipeline,
		Recovery:    cfg.recovery,
		Incremental: cfg.incr,
	}
	if cfg.trace && !cfg.json {
		// Workers report concurrently; serialize the trace lines.
		var mu sync.Mutex
		opts.Hook = func(graph string, ev assignmentmotion.PassEvent) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(out, "# %-24s %s\n", graph, formatPassEvent(ev))
		}
	}
	rep := assignmentmotion.OptimizeBatch(context.Background(), graphs, opts)

	// Optional per-graph differential verification against the originals
	// (the engine never mutates its inputs, so graphs[i] is pristine).
	verified := make([]int, len(files))
	var verr error
	if cfg.verify > 0 {
		for i, r := range rep.Results {
			if r.Err != nil {
				continue
			}
			vrep := assignmentmotion.Equivalent(graphs[i], r.Graph, cfg.verify, 1)
			if !vrep.Equivalent {
				verr = fmt.Errorf("%s: semantics changed: %s", files[i], vrep.Detail)
				break
			}
			verified[i] = vrep.Runs
		}
		if verr != nil {
			return &exitError{code: exitOptimizeFailed, err: verr}
		}
	}

	if cfg.json {
		j := batchJSON{
			Graphs:            rep.Graphs,
			Succeeded:         rep.Succeeded,
			Degraded:          rep.Degraded,
			Failed:            rep.Failed,
			CacheHits:         rep.CacheHits,
			CacheMisses:       rep.CacheMisses,
			RegionHits:        rep.RegionHits,
			RegionsReused:     rep.RegionsReused,
			RegionsRecomputed: rep.RegionsRecomputed,
			Parallelism:       rep.Parallelism,
			Wall:              rep.Wall.String(),
			PhaseInit:         rep.Phase.Init.String(),
			PhaseAM:           rep.Phase.AM.String(),
			PhaseFlush:        rep.Phase.Flush.String(),
			AMIterations:      rep.AMIterations,
			MaxAMIters:        rep.MaxAMIterations,
			Passes:            rep.Passes,
		}
		for i, r := range rep.Results {
			gj := batchGraphJSON{
				Name:              r.Name,
				File:              files[i],
				Outcome:           string(r.Outcome),
				CacheHit:          r.CacheHit,
				CacheTier:         r.CacheTier,
				RegionsTotal:      r.RegionsTotal,
				RegionsReused:     r.RegionsReused,
				RegionsRecomputed: r.RegionsRecomputed,
				AMIterations:      r.Result.AM.Iterations,
				Wall:              r.Timings.Total.String(),
				Verified:          verified[i],
			}
			for _, f := range r.Failures {
				gj.Failures = append(gj.Failures, f.Error())
			}
			if r.Err != nil {
				gj.Error = r.Err.Error()
			} else {
				gj.Program = assignmentmotion.Format(r.Graph)
			}
			j.Results = append(j.Results, gj)
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(j); err != nil {
			return err
		}
	} else {
		for i, r := range rep.Results {
			status := string(r.Outcome)
			if r.Err != nil {
				status = "failed: " + r.Err.Error()
			} else if r.Outcome == assignmentmotion.BatchDegraded && len(r.Failures) > 0 {
				status = fmt.Sprintf("degraded (%v)", r.Failures[0])
			}
			cache := "miss"
			if r.CacheHit {
				cache = "hit"
				if r.CacheTier == "region" {
					cache = fmt.Sprintf("region(%d/%d reused)", r.RegionsReused, r.RegionsTotal)
				}
			}
			fmt.Fprintf(out, "# %-24s %-40s %s wall=%v am-iters=%d cache=%s\n",
				r.Name, files[i], status, r.Timings.Total.Round(time.Microsecond), r.Result.AM.Iterations, cache)
		}
		if cfg.stats {
			fmt.Fprintf(out, "# batch: %d graphs, %d ok (%d degraded), %d failed, %d cache hits, %d misses, parallelism %d\n",
				rep.Graphs, rep.Succeeded, rep.Degraded, rep.Failed, rep.CacheHits, rep.CacheMisses, rep.Parallelism)
			fmt.Fprintf(out, "# phase wall: init=%v am=%v flush=%v (sum %v across workers)\n",
				rep.Phase.Init.Round(time.Microsecond), rep.Phase.AM.Round(time.Microsecond),
				rep.Phase.Flush.Round(time.Microsecond), rep.Phase.Total.Round(time.Microsecond))
			for _, a := range rep.Passes {
				fmt.Fprintf(out, "# pass %-13s runs=%-4d changes=%-5d iters=%-4d wall=%-10v solves=%d visits=%d sweeps=%d arena+=(%dw,%di,%dv)\n",
					a.Pass, a.Runs, a.Changes, a.Iterations, a.Wall.Round(time.Microsecond),
					a.Dataflow.Solves, a.Dataflow.Visits, a.Dataflow.Sweeps,
					a.Arena.Words, a.Arena.Ints, a.Arena.Vecs)
			}
			if cfg.incr {
				fmt.Fprintf(out, "# incr: %d region hits, %d regions reused, %d re-optimized\n",
					rep.RegionHits, rep.RegionsReused, rep.RegionsRecomputed)
			}
			fmt.Fprintf(out, "# am iterations: total=%d max=%d\n", rep.AMIterations, rep.MaxAMIterations)
			fmt.Fprintf(out, "# wall: %v\n", rep.Wall.Round(time.Microsecond))
		}
	}

	return batchExitError(rep.Failed, rep.Degraded, rep.Graphs, cfg.recovery)
}

// batchExitError maps a batch's worst outcome to the process exit code.
// Failure (exit 3) takes precedence over degradation (exit 4): a batch
// with both failed and degraded graphs exits 3, because degraded results
// are still valid programs while failed ones produced nothing.
func batchExitError(failed, degraded, graphs int, recovery assignmentmotion.RecoveryPolicy) error {
	if failed > 0 {
		return exitf(exitOptimizeFailed, "%d of %d graphs failed", failed, graphs)
	}
	if degraded > 0 {
		return exitf(exitDegraded, "%d of %d graphs degraded under -on-error=%s",
			degraded, graphs, recovery)
	}
	return nil
}
