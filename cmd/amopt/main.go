// Command amopt parses a flow-graph program in .fg syntax, runs a pass
// pipeline over it, and prints the transformed program (or its Graphviz
// rendering, metrics, or an interpreted execution).
//
// Usage:
//
//	amopt [flags] file.fg        # or "-" for stdin
//	amopt [flags] a.fg b.fg dir/ # batch mode: many files / directories
//
//	-pass globalg                comma-separated pipeline; see -list
//	-passes init,am,flush        synonym of -pass; "-passes list" prints
//	                             the pass registry (description + paper
//	                             reference per pass)
//	-trace-passes                print one line per executed pass: wall
//	                             time, instruction/block deltas, solver
//	                             work, arena growth
//	-dot                         emit Graphviz instead of .fg
//	-metrics                     print static metrics before/after
//	-run "a=1,b=2"               execute source AND optimized program on
//	                             the given environment via the compiled
//	                             executor; prints the trace and the
//	                             before/after cost counters
//	-input k=v                   bind one input variable (repeatable;
//	                             merged over -run bindings; implies
//	                             execution)
//	-trap-div-zero               division/remainder by zero aborts the
//	                             execution (exit 5) instead of yielding 0
//	-steps N                     execution step budget
//	-verify N                    check semantics preservation on N
//	                             random inputs and report dynamic costs
//	-figure name                 load a built-in paper figure instead of
//	                             a file (see -list)
//	-nested                      accept nested expressions (decomposed
//	                             to 3-address form, §6)
//	-prog                        input is the structured mini-language
//	-fun                         input is the typed front-end (functions,
//	                             let declarations, type inference); the
//	                             program is type-checked strictly before
//	                             lowering
//	-random N [-size S]          use a random structured program
//	-json                        machine-readable report
//	-list                        list passes and built-in figures
//
// Batch flags (multiple files, or a directory of .fg files):
//
//	-parallel N                  worker goroutines (0 = GOMAXPROCS)
//	-timeout D                   per-graph deadline, e.g. 500ms
//	-stats                       print the aggregated batch report
//	-incr-stats                  enable region-granular incremental
//	                             re-optimization across the batch and
//	                             report region reuse (a later file that
//	                             edits an earlier one inside a single
//	                             region replays only that region; use
//	                             -parallel 1 so bases precede edits)
//
// Failure handling:
//
//	-on-error fail|rollback|skip what to do when a pass fails (panic,
//	                             fixpoint overrun, invalid result):
//	                             fail stops with the typed error, rollback
//	                             restores the last-good checkpoint and
//	                             stops, skip restores and continues with
//	                             the remaining passes
//
// Exit codes: 0 success; 1 usage (bad flags, unknown pass, unreadable
// input); 2 parse error (including typed front-end type errors); 3
// optimization failed; 4 degraded (every result is valid, but -on-error
// recovery absorbed at least one pass failure); 5 execution trapped
// (-trap-div-zero hit a division or remainder by zero); 6 trace
// mismatch (the optimized program produced a different out-trace than
// the source program — an optimizer bug, never expected). Failure beats
// degradation: a batch with both failed and degraded graphs exits 3.
//
// Examples:
//
//	amopt -figure running -pass globalg            # reproduce Figure 15
//	amopt -figure running -pass init               # reproduce Figure 12
//	amopt -figure fig08 -pass am-restricted        # Figure 8 (stuck)
//	amopt -pass em,copyprop -verify 20 prog.fg
//	amopt -prog -pass globalg,tidy -json main.prog
//	amopt -parallel 8 -timeout 2s -stats corpus/   # batch optimize a tree
//
// Profiling (pprof):
//
//	-cpuprofile f.pprof          write a CPU profile of the whole run
//	-memprofile f.pprof          write an allocation profile at exit
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"assignmentmotion"
	"assignmentmotion/internal/figures"
)

// Exit codes. Scripts driving amopt over corpora can tell "the input was
// bad" from "the optimizer failed" from "the optimizer recovered but the
// result is not the full optimization".
const (
	exitOK             = 0 // success
	exitUsage          = 1 // bad flags, unknown pass/figure, unreadable input
	exitParse          = 2 // input failed to parse
	exitOptimizeFailed = 3 // the pipeline (or ≥1 batch graph) failed
	exitDegraded       = 4 // recovered: every result valid, some not fully optimized
	exitTrapped        = 5 // -trap-div-zero: the execution divided by zero
	exitMismatch       = 6 // source and optimized traces diverged (optimizer bug)
)

// exitError tags an error with the process exit code it should map to.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }
func (e *exitError) Unwrap() error { return e.err }

// exitf builds an exitError in one line.
func exitf(code int, format string, args ...any) error {
	return &exitError{code: code, err: fmt.Errorf(format, args...)}
}

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		os.Exit(exitOK)
	}
	code := exitUsage
	var ee *exitError
	if errors.As(err, &ee) {
		code = ee.code
	}
	fmt.Fprintln(os.Stderr, "amopt:", err)
	os.Exit(code)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("amopt", flag.ContinueOnError)
	passFlag := fs.String("pass", "globalg", "comma-separated pass pipeline")
	passesFlag := fs.String("passes", "", "synonym of -pass; \"-passes list\" prints the pass registry")
	traceFlag := fs.Bool("trace-passes", false, "print one line per executed pass (timings, deltas, solver work)")
	dotFlag := fs.Bool("dot", false, "emit Graphviz dot")
	metricsFlag := fs.Bool("metrics", false, "print static metrics before and after")
	runFlag := fs.String("run", "", "execute source and optimized program with environment, e.g. \"a=1,b=2\"")
	var inputFlags multiFlag
	fs.Var(&inputFlags, "input", "bind one input variable name=value (repeatable; implies execution)")
	trapFlag := fs.Bool("trap-div-zero", false, "division/remainder by zero aborts the execution (exit 5) instead of yielding 0")
	stepsFlag := fs.Int("steps", 0, "execution step budget (0 = default)")
	verifyFlag := fs.Int("verify", 0, "verify semantics on N random inputs")
	figureFlag := fs.String("figure", "", "load a built-in paper figure")
	nestedFlag := fs.Bool("nested", false, "accept nested expressions and decompose to 3-address form (§6)")
	progFlag := fs.Bool("prog", false, "input is the structured mini-language (prog/if/while/do)")
	funFlag := fs.Bool("fun", false, "input is the typed front-end (functions, let declarations, type inference)")
	randomFlag := fs.Int64("random", -1, "use a random structured program with this seed instead of a file")
	randomSize := fs.Int("size", 10, "size of the random program (with -random)")
	jsonFlag := fs.Bool("json", false, "emit a JSON report (metrics, verification, run) instead of text annotations")
	listFlag := fs.Bool("list", false, "list passes and figures")
	parallelFlag := fs.Int("parallel", 0, "batch mode: worker goroutines (0 = GOMAXPROCS)")
	timeoutFlag := fs.Duration("timeout", 0, "batch mode: per-graph optimization deadline (0 = none)")
	statsFlag := fs.Bool("stats", false, "batch mode: print the aggregated batch report")
	incrStatsFlag := fs.Bool("incr-stats", false, "batch mode: enable region-granular incremental re-optimization and report region reuse")
	onErrorFlag := fs.String("on-error", "fail", "pass-failure recovery: fail, rollback, or skip")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof allocation profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "amopt: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live + cumulative allocations accurately
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "amopt: -memprofile:", err)
			}
		}()
	}

	recovery, err := assignmentmotion.ParseRecoveryPolicy(*onErrorFlag)
	if err != nil {
		return fmt.Errorf("-on-error: %w", err)
	}

	passSpec := *passFlag
	if *passesFlag != "" {
		passSpec = *passesFlag
	}
	if passSpec == "list" {
		printRegistry(out)
		return nil
	}

	if *listFlag {
		fmt.Fprintln(out, "passes:")
		for _, p := range assignmentmotion.Passes() {
			fmt.Fprintf(out, "  %s\n", p)
		}
		fmt.Fprintln(out, "figures:")
		for _, f := range figures.Names() {
			fmt.Fprintf(out, "  %s\n", f)
		}
		return nil
	}

	if batch, files, err := batchInputs(fs.Args(), *figureFlag, *randomFlag); err != nil {
		return err
	} else if batch {
		return runBatch(files, batchConfig{
			passSpec: passSpec,
			nested:   *nestedFlag,
			prog:     *progFlag,
			fun:      *funFlag,
			parallel: *parallelFlag,
			timeout:  *timeoutFlag,
			verify:   *verifyFlag,
			stats:    *statsFlag,
			incr:     *incrStatsFlag,
			json:     *jsonFlag,
			dot:      *dotFlag,
			run:      *runFlag,
			trace:    *traceFlag,
			recovery: recovery,
		}, out)
	}

	var g *assignmentmotion.Graph
	if *randomFlag >= 0 {
		g = assignmentmotion.RandomStructured(*randomFlag, assignmentmotion.GenConfig{Size: *randomSize})
	} else {
		g, err = load(fs, *figureFlag, *nestedFlag, *progFlag, *funFlag)
		if err != nil {
			return err
		}
	}
	orig := g.Clone()

	report := jsonReport{Graph: g.Name}
	if *metricsFlag || *jsonFlag {
		m := assignmentmotion.Measure(g)
		report.Before = &m
		if !*jsonFlag {
			fmt.Fprintf(out, "# before: %s\n", m)
		}
	}

	pl, err := assignmentmotion.NewPipeline(parsePasses(passSpec)...)
	if err != nil {
		return err // unknown pass name: usage
	}
	pl.Recovery = recovery
	prep, err := pl.Run(g)
	if err != nil {
		return exitf(exitOptimizeFailed, "%v", err)
	}
	if *traceFlag {
		for _, ev := range prep.Events {
			fmt.Fprintf(out, "# %s\n", formatPassEvent(ev))
		}
	}
	if err := g.Validate(); err != nil {
		return exitf(exitOptimizeFailed, "pipeline produced an invalid graph: %v", err)
	}

	if *metricsFlag || *jsonFlag {
		m := assignmentmotion.Measure(g)
		report.After = &m
		if !*jsonFlag {
			fmt.Fprintf(out, "# after:  %s\n", m)
		}
	}

	if *verifyFlag > 0 {
		rep := assignmentmotion.Equivalent(orig, g, *verifyFlag, 1)
		if !rep.Equivalent {
			return exitf(exitOptimizeFailed, "semantics changed: %s", rep.Detail)
		}
		report.Verified = rep.Runs
		report.ExprEvalsBefore, report.ExprEvalsAfter = rep.A.ExprEvals, rep.B.ExprEvals
		report.AssignExecsBefore, report.AssignExecsAfter = rep.A.AssignExecs, rep.B.AssignExecs
		if !*jsonFlag {
			fmt.Fprintf(out, "# verified on %d inputs: expr %d->%d, assigns %d->%d\n",
				rep.Runs, rep.A.ExprEvals, rep.B.ExprEvals, rep.A.AssignExecs, rep.B.AssignExecs)
		}
	}

	switch {
	case *jsonFlag:
		// program included in the report below
	case *dotFlag:
		fmt.Fprint(out, assignmentmotion.Dot(g))
	default:
		fmt.Fprint(out, assignmentmotion.Format(g))
	}

	var trapped, mismatch bool
	if *runFlag != "" || len(inputFlags) > 0 {
		env, err := parseEnv(*runFlag)
		if err != nil {
			return err
		}
		for _, kv := range inputFlags {
			extra, err := parseEnv(kv)
			if err != nil {
				return fmt.Errorf("-input: %w", err)
			}
			for k, v := range extra {
				env[k] = v
			}
		}
		opts := assignmentmotion.ExecOptions{TrapOnDivZero: *trapFlag}
		before, err := assignmentmotion.RunCompiled(orig, env, *stepsFlag, opts)
		if err != nil {
			return exitf(exitOptimizeFailed, "compile source program for execution: %v", err)
		}
		r, err := assignmentmotion.RunCompiled(g, env, *stepsFlag, opts)
		if err != nil {
			return exitf(exitOptimizeFailed, "compile optimized program for execution: %v", err)
		}
		trapped = before.Trapped || r.Trapped
		mismatch = !trapped && !r.Truncated && !before.Truncated && !traceEqual(before.Trace, r.Trace)
		report.Trace = r.Trace
		report.Run = &r.Counts
		report.RunBefore = &before.Counts
		report.Trapped = trapped
		report.TraceMatch = !mismatch
		if !*jsonFlag {
			fmt.Fprintf(out, "# trace: %v\n", r.Trace)
			fmt.Fprintf(out, "# exprEvals=%d assignExecs=%d tempAssigns=%d steps=%d truncated=%v\n",
				r.Counts.ExprEvals, r.Counts.AssignExecs, r.Counts.TempAssignExecs,
				r.Counts.Steps, r.Truncated)
			fmt.Fprintf(out, "# source: exprEvals=%d assignExecs=%d tempAssigns=%d steps=%d\n",
				before.Counts.ExprEvals, before.Counts.AssignExecs, before.Counts.TempAssignExecs,
				before.Counts.Steps)
			fmt.Fprintf(out, "# delta: exprEvals=%+d assignExecs=%+d tempAssigns=%+d\n",
				r.Counts.ExprEvals-before.Counts.ExprEvals,
				r.Counts.AssignExecs-before.Counts.AssignExecs,
				r.Counts.TempAssignExecs-before.Counts.TempAssignExecs)
		}
	}
	if *jsonFlag {
		report.Passes = prep.Events
		report.Program = assignmentmotion.Format(g)
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	}
	if trapped {
		return exitf(exitTrapped, "execution trapped on division or remainder by zero")
	}
	if mismatch {
		return exitf(exitMismatch, "optimized program's trace differs from the source program's (optimizer bug)")
	}
	if prep.Degraded() {
		return exitf(exitDegraded, "pipeline degraded: %d pass failure(s) absorbed by -on-error=%s",
			len(prep.Failures), recovery)
	}
	return nil
}

// multiFlag collects a repeatable string flag (-input k=v -input m=n).
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// traceEqual compares two out-traces element-wise.
func traceEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// parsePasses splits a -pass / -passes spec into pass names, skipping
// empty segments and the "none" placeholder.
func parsePasses(spec string) []assignmentmotion.Pass {
	var passes []assignmentmotion.Pass
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" || name == "none" {
			continue
		}
		passes = append(passes, assignmentmotion.Pass(name))
	}
	return passes
}

// printRegistry renders the pass registry ("-passes list"): one line per
// registered pass with its description and paper reference.
func printRegistry(out io.Writer) {
	infos := assignmentmotion.PassInfos()
	width := 0
	for _, in := range infos {
		if len(in.Name) > width {
			width = len(in.Name)
		}
	}
	for _, in := range infos {
		fmt.Fprintf(out, "%-*s  %s\n", width, in.Name, in.Description)
		if in.Ref != "" {
			fmt.Fprintf(out, "%-*s  [%s]\n", width, "", in.Ref)
		}
	}
}

// formatPassEvent renders one pipeline event as a -trace-passes line.
func formatPassEvent(ev assignmentmotion.PassEvent) string {
	line := fmt.Sprintf("pass %-13s changes=%-5d iters=%-3d wall=%-10v instrs %d->%d blocks %d->%d solves=%d visits=%d sweeps=%d",
		ev.Pass, ev.Stats.Changes, ev.Stats.Iterations, ev.Wall.Round(time.Microsecond),
		ev.InstrsBefore, ev.InstrsAfter, ev.BlocksBefore, ev.BlocksAfter,
		ev.Dataflow.Solves, ev.Dataflow.Visits, ev.Dataflow.Sweeps)
	if ev.Arena.Words != 0 || ev.Arena.Ints != 0 || ev.Arena.Vecs != 0 {
		line += fmt.Sprintf(" arena+=(%dw,%di,%dv)", ev.Arena.Words, ev.Arena.Ints, ev.Arena.Vecs)
	}
	if ev.Outcome != "ok" && ev.Outcome != "" {
		line += " outcome=" + ev.Outcome
		if ev.Err != nil {
			line += fmt.Sprintf(" err=%q", ev.Err)
		}
	}
	return line
}

// jsonReport is the machine-readable output of -json.
type jsonReport struct {
	Graph             string                       `json:"graph"`
	Passes            []assignmentmotion.PassEvent `json:"passes,omitempty"`
	Before            *assignmentmotion.Static     `json:"before,omitempty"`
	After             *assignmentmotion.Static     `json:"after,omitempty"`
	Verified          int                          `json:"verifiedInputs,omitempty"`
	ExprEvalsBefore   int                          `json:"exprEvalsBefore,omitempty"`
	ExprEvalsAfter    int                          `json:"exprEvalsAfter,omitempty"`
	AssignExecsBefore int                          `json:"assignExecsBefore,omitempty"`
	AssignExecsAfter  int                          `json:"assignExecsAfter,omitempty"`
	Trace             []int64                      `json:"trace,omitempty"`
	Run               *assignmentmotion.ExecCounts `json:"run,omitempty"`
	RunBefore         *assignmentmotion.ExecCounts `json:"runBefore,omitempty"`
	Trapped           bool                         `json:"trapped,omitempty"`
	TraceMatch        bool                         `json:"traceMatch,omitempty"`
	Program           string                       `json:"program"`
}

func load(fs *flag.FlagSet, figure string, nested, prog, fun bool) (*assignmentmotion.Graph, error) {
	if figure != "" {
		for _, f := range figures.Names() {
			if f == figure {
				return figures.Load(figure), nil
			}
		}
		return nil, fmt.Errorf("unknown figure %q (see -list)", figure)
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one input file (or -figure)")
	}
	path := fs.Arg(0)
	var src string
	if path == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		src = string(data)
	} else {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		src = string(data)
	}
	var g *assignmentmotion.Graph
	var err error
	switch {
	case fun:
		g, _, err = assignmentmotion.CompileFun(src)
	case prog:
		g, err = assignmentmotion.ParseProgram(src)
	case nested:
		g, err = assignmentmotion.ParseNested(src)
	default:
		g, err = assignmentmotion.Parse(src)
	}
	if err != nil {
		return nil, exitf(exitParse, "%s:%v", path, err)
	}
	return g, nil
}

func parseEnv(s string) (map[assignmentmotion.Var]int64, error) {
	env := map[assignmentmotion.Var]int64{}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad binding %q (want name=value)", kv)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %w", kv, err)
		}
		env[assignmentmotion.Var(strings.TrimSpace(parts[0]))] = v
	}
	return env, nil
}
