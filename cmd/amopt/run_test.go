package main

// Tests of the execution flags: -input bindings, -trap-div-zero with its
// dedicated exit code, the before/after delta lines, and the typed
// front-end (-fun) path.

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunInputFlags(t *testing.T) {
	path := writeTemp(t, "p.fg", `
graph p {
  entry a
  exit e
  block a { x := u + v y := u + v goto e }
  block e { out(x, y) }
}
`)
	out, err := runCLI(t, "-input", "u=2", "-input", "v=3", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# trace: [5 5]", "# source: exprEvals=2", "# delta: exprEvals=-1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunInputOverridesRunBinding(t *testing.T) {
	path := writeTemp(t, "p.fg", `
graph p {
  entry a
  exit e
  block a { x := u + u goto e }
  block e { out(x) }
}
`)
	out, err := runCLI(t, "-run", "u=1", "-input", "u=9", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# trace: [18]") {
		t.Errorf("-input did not override -run:\n%s", out)
	}
}

func TestRunTrapDivZeroExitCode(t *testing.T) {
	path := writeTemp(t, "p.fg", `
graph p {
  entry a
  exit e
  block a { q := u / v goto e }
  block e { out(q) }
}
`)
	// Untrapped: division by zero yields 0.
	out, err := runCLI(t, "-input", "u=7", "-input", "v=0", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# trace: [0]") {
		t.Errorf("untrapped trace:\n%s", out)
	}
	// Trapped: exit code 5.
	_, err = runCLI(t, "-trap-div-zero", "-input", "u=7", "-input", "v=0", path)
	if err == nil {
		t.Fatal("expected the trapped execution to fail")
	}
	var ee *exitError
	if !errors.As(err, &ee) || ee.code != exitTrapped {
		t.Fatalf("err = %v, want exit code %d", err, exitTrapped)
	}
}

func TestRunFunDialect(t *testing.T) {
	path := writeTemp(t, "p.fun", `
fn square(x: int): int { return x * x }
prog p {
	let a = square(n)
	let b = square(n)
	out(a + b)
}
`)
	out, err := runCLI(t, "-fun", "-input", "n=4", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# trace: [32]") {
		t.Errorf("trace:\n%s", out)
	}
	if !strings.Contains(out, "# delta:") {
		t.Errorf("missing delta line:\n%s", out)
	}
}

func TestRunFunTypeErrorIsParseExit(t *testing.T) {
	path := writeTemp(t, "bad.fun", `prog p { let a = true + 1 }`)
	_, err := runCLI(t, "-fun", path)
	if err == nil {
		t.Fatal("expected a type error")
	}
	var ee *exitError
	if !errors.As(err, &ee) || ee.code != exitParse {
		t.Fatalf("err = %v, want exit code %d", err, exitParse)
	}
}

func TestRunJSONCarriesBeforeCounts(t *testing.T) {
	path := writeTemp(t, "p.fg", `
graph p {
  entry a
  exit e
  block a { x := u + v y := u + v goto e }
  block e { out(x, y) }
}
`)
	out, err := runCLI(t, "-json", "-input", "u=2", "-input", "v=3", path)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if rep.Run == nil || rep.RunBefore == nil {
		t.Fatalf("missing run counts: %+v", rep)
	}
	if !rep.TraceMatch {
		t.Error("traceMatch = false")
	}
	if rep.Run.ExprEvals >= rep.RunBefore.ExprEvals {
		t.Errorf("exprEvals %d -> %d, want an improvement", rep.RunBefore.ExprEvals, rep.Run.ExprEvals)
	}
}
