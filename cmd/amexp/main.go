// Command amexp regenerates the experiments recorded in EXPERIMENTS.md:
// the per-figure pipeline comparison, the phase-by-phase trace of the
// running example, the expression-optimality study on random program
// suites, the busy-vs-lazy lifetime comparison, the exact all-paths
// check on loop-free programs, and the §4.5 complexity measurements.
//
// Usage:
//
//	amexp -exp figures|corpus|running|optimality|lifetimes|paths|complexity|all
//	      [-seeds N] [-envs N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"assignmentmotion/internal/am"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/copyprop"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/corpus"
	"assignmentmotion/internal/figures"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/lcm"
	"assignmentmotion/internal/metrics"
	"assignmentmotion/internal/mr"
	"assignmentmotion/internal/paths"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/rae"
	"assignmentmotion/internal/verify"
)

func main() {
	exp := flag.String("exp", "all", "experiment: figures, corpus, running, optimality, lifetimes, paths, complexity, all")
	seeds := flag.Int("seeds", 20, "random programs per suite")
	envs := flag.Int("envs", 10, "random inputs per program")
	flag.Parse()

	w := os.Stdout
	ran := false
	if *exp == "figures" || *exp == "all" {
		figuresExp(w, *envs)
		ran = true
	}
	if *exp == "corpus" || *exp == "all" {
		corpusExp(w, *envs)
		ran = true
	}
	if *exp == "running" || *exp == "all" {
		runningExp(w)
		ran = true
	}
	if *exp == "optimality" || *exp == "all" {
		optimalityExp(w, *seeds, *envs)
		ran = true
	}
	if *exp == "lifetimes" || *exp == "all" {
		lifetimesExp(w, *seeds)
		ran = true
	}
	if *exp == "paths" || *exp == "all" {
		pathsExp(w, *seeds)
		ran = true
	}
	if *exp == "complexity" || *exp == "all" {
		complexityExp(w)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "amexp: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}

// pipelines used throughout, in report order. The paper's Theorem 5.2
// universe contains em, am, and am-restricted; em+cp and globalg+cp use
// copy propagation, which REWRITES expressions and thereby escapes that
// universe (it may beat globalg on expression counts — see EXPERIMENTS.md).
var pipelineOrder = []string{"original", "mr", "em", "em+cp", "am-restricted", "am", "globalg", "globalg+cp"}

// paperUniverse are the rivals Theorem 5.2 quantifies over.
var paperUniverse = map[string]bool{"original": true, "mr": true, "em": true, "am-restricted": true, "am": true}

func applyPipeline(name string, g *ir.Graph) {
	switch name {
	case "original":
	case "em":
		lcm.Run(g)
	case "mr":
		mr.Run(g)
	case "em+cp":
		for i := 0; i < 8; i++ {
			before := g.Encode()
			lcm.Run(g)
			copyprop.Run(g)
			if g.Encode() == before {
				return
			}
		}
	case "am-restricted":
		am.RunRestricted(g)
	case "am":
		am.Run(g)
	case "globalg":
		core.Optimize(g)
	case "globalg+cp":
		for i := 0; i < 8; i++ {
			before := g.Encode()
			core.Optimize(g)
			copyprop.Run(g)
			if g.Encode() == before {
				return
			}
		}
	default:
		panic("unknown pipeline " + name)
	}
}

// figuresExp — experiment F*: every embedded paper figure through every
// pipeline, reporting mean dynamic costs over shared random inputs.
func figuresExp(w io.Writer, nEnvs int) {
	fmt.Fprintln(w, "== Experiment F: paper figures, pipeline comparison")
	workloadExp(w, nEnvs, figures.Names(), figures.Load)
}

// corpusExp — the same comparison over the realistic hand-written kernels.
func corpusExp(w io.Writer, nEnvs int) {
	fmt.Fprintln(w, "== Experiment K: realistic corpus kernels, pipeline comparison")
	workloadExp(w, nEnvs, corpus.Names(), corpus.Load)
}

func workloadExp(w io.Writer, nEnvs int, names []string, load func(string) *ir.Graph) {
	fmt.Fprintln(w, "   (mean per-execution counts over shared random inputs; lower is better)")
	for _, name := range names {
		base := load(name)
		inputs := terminatingEnvs(base, nEnvs, 12345)
		if len(inputs) == 0 {
			fmt.Fprintf(w, "\n-- %s: no terminating inputs found, skipped\n", name)
			continue
		}
		fmt.Fprintf(w, "\n-- %s (%d terminating inputs)\n", name, len(inputs))
		fmt.Fprintf(w, "%-14s %10s %12s %12s %10s\n", "pipeline", "expr/run", "assign/run", "temp/run", "instrs")
		for _, p := range pipelineOrder {
			g := base.Clone()
			applyPipeline(p, g)
			if rep := verify.Equivalent(base, g, nEnvs, 999); !rep.Equivalent {
				fmt.Fprintf(w, "%-14s SEMANTICS VIOLATION: %s\n", p, rep.Detail)
				continue
			}
			d := metrics.Evaluate(g, inputs, 0)
			fmt.Fprintf(w, "%-14s %10.2f %12.2f %12.2f %10d\n",
				p, d.MeanExprEvals(), d.MeanAssignExecs(),
				float64(d.TempAssignExecs)/float64(d.Runs), g.InstrCount())
		}
	}
	fmt.Fprintln(w)
}

// runningExp — experiments F12/F14/F15: the running example phase by phase.
func runningExp(w io.Writer) {
	fmt.Fprintln(w, "== Experiment R: the running example, phase by phase (Figures 4, 12, 14, 15)")
	g := figures.Load("running")
	fmt.Fprintf(w, "\n-- Figure 4 (input)\n%s", printer.String(g))
	g.SplitCriticalEdges()
	core.Initialize(g)
	fmt.Fprintf(w, "\n-- Figure 12 (after initialization)\n%s", printer.String(g))
	st := am.Run(g)
	fmt.Fprintf(w, "\n-- Figure 14 (after assignment motion; %d iterations, %d eliminated)\n%s",
		st.Iterations, st.Eliminated, printer.String(g))
	fst := flush.Run(g)
	fmt.Fprintf(w, "\n-- Figure 15 (after final flush; %d inits dropped, %d placed, %d reconstructed)\n%s\n",
		fst.DroppedInits, fst.InsertedInits, fst.Reconstructed, printer.String(g))
}

// optimalityExp — experiments O1/O2/S1: random suites, pipeline table,
// dominance violations.
func optimalityExp(w io.Writer, nSeeds, nEnvs int) {
	fmt.Fprintln(w, "== Experiment O: expression optimality on random program suites")
	suites := []struct {
		name string
		gen  func(int64) *ir.Graph
	}{
		{"structured", func(s int64) *ir.Graph { return cfggen.Structured(s, cfggen.Config{Size: 14}) }},
		{"unstructured", func(s int64) *ir.Graph { return cfggen.Unstructured(s, cfggen.Config{Size: 16}) }},
	}
	for _, suite := range suites {
		totals := map[string]metrics.Dynamic{}
		violations := map[string]int{}
		semantic := 0
		for seed := int64(0); seed < int64(nSeeds); seed++ {
			base := suite.gen(seed)
			inputs := terminatingEnvs(base, nEnvs, seed*7+1)
			results := map[string]metrics.Dynamic{}
			for _, p := range pipelineOrder {
				g := base.Clone()
				applyPipeline(p, g)
				if rep := verify.Equivalent(base, g, nEnvs, seed*11+5); !rep.Equivalent {
					semantic++
					continue
				}
				d := metrics.Evaluate(g, inputs, 0)
				results[p] = d
				agg := totals[p]
				agg.Runs += d.Runs
				agg.ExprEvals += d.ExprEvals
				agg.AssignExecs += d.AssignExecs
				agg.TempAssignExecs += d.TempAssignExecs
				totals[p] = agg
			}
			glob := results["globalg"]
			for p := range paperUniverse {
				if r, ok := results[p]; ok && glob.ExprEvals > r.ExprEvals {
					violations[p]++
				}
			}
		}
		fmt.Fprintf(w, "\n-- suite %s (%d programs x %d inputs)\n", suite.name, nSeeds, nEnvs)
		fmt.Fprintf(w, "%-14s %10s %12s %12s\n", "pipeline", "expr/run", "assign/run", "temp/run")
		for _, p := range pipelineOrder {
			d := totals[p]
			fmt.Fprintf(w, "%-14s %10.2f %12.2f %12.2f\n",
				p, d.MeanExprEvals(), d.MeanAssignExecs(),
				float64(d.TempAssignExecs)/float64(maxInt(1, d.Runs)))
		}
		fmt.Fprintf(w, "dominance violations within the Theorem 5.2 universe: ")
		if len(violations) == 0 {
			fmt.Fprintln(w, "none")
		} else {
			keys := make([]string, 0, len(violations))
			for k := range violations {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "%s=%d ", k, violations[k])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "semantics violations: %d\n", semantic)
	}
	fmt.Fprintln(w)
}

// lifetimesExp — the Theorem 5.4 experiment: busy (earliest, GAssMot)
// vs. lazy (after the final flush, GGlobAlg) placement of temporary
// initializations on random programs.
func lifetimesExp(w io.Writer, nSeeds int) {
	fmt.Fprintln(w, "== Experiment L: the final flush vs. busy placement (Theorem 5.4)")
	fmt.Fprintf(w, "%8s %10s %10s %10s %10s %12s %12s %12s %12s\n",
		"seed", "busyLife", "lazyLife", "busyPress", "lazyPress",
		"busyInits", "lazyInits", "busyTemp/r", "lazyTemp/r")
	var totBusyLife, totLazyLife int
	for seed := int64(0); seed < int64(nSeeds); seed++ {
		busy := cfggen.Structured(seed, cfggen.Config{Size: 12})
		busy.SplitCriticalEdges()
		core.Initialize(busy)
		am.Run(busy)
		lazy := busy.Clone()
		flush.Run(lazy)

		mb, ml := metrics.Measure(busy), metrics.Measure(lazy)
		inputs := terminatingEnvs(busy, 6, seed+3)
		db := metrics.Evaluate(busy, inputs, 0)
		dl := metrics.Evaluate(lazy, inputs, 0)
		fmt.Fprintf(w, "%8d %10d %10d %10d %10d %12d %12d %12.2f %12.2f\n",
			seed, mb.TempLifetime, ml.TempLifetime,
			metrics.MaxTempPressure(busy), metrics.MaxTempPressure(lazy),
			mb.TempInits, ml.TempInits,
			float64(db.TempAssignExecs)/float64(maxInt(1, db.Runs)),
			float64(dl.TempAssignExecs)/float64(maxInt(1, dl.Runs)))
		totBusyLife += mb.TempLifetime
		totLazyLife += ml.TempLifetime
	}
	fmt.Fprintf(w, "total lifetime: busy=%d lazy=%d (flush reduction %.0f%%)\n\n",
		totBusyLife, totLazyLife, 100*(1-float64(totLazyLife)/float64(maxInt(1, totBusyLife))))
}

// pathsExp — the exact, non-sampled Theorem 5.2 check: on loop-free
// random programs, enumerate EVERY s→e path (identified by its branch
// decisions) and compare the static expression counts per path.
func pathsExp(w io.Writer, nSeeds int) {
	fmt.Fprintln(w, "== Experiment P: exact all-paths expression counts on loop-free programs (Theorem 5.2)")
	fmt.Fprintf(w, "%8s %7s %12s %12s %12s %12s %12s %14s\n",
		"seed", "#paths", "orig Σexpr", "mr Σexpr", "em Σexpr", "am Σexpr", "glob Σexpr", "dominatesAll?")
	names := []string{"original", "mr", "em", "am", "globalg"}
	for seed := int64(0); seed < int64(nSeeds); seed++ {
		base := cfggen.Structured(seed, cfggen.Config{Size: 9, NoLoops: true})
		decs := paths.Enumerate(base, 4096)
		totals := map[string]int{}
		variants := map[string]*ir.Graph{}
		for _, p := range names {
			g := base.Clone()
			applyPipeline(p, g)
			variants[p] = g
			for _, d := range decs {
				c, ok := paths.Walk(g, d, 0)
				if !ok {
					fmt.Fprintf(w, "seed %d: walk bound hit for %s\n", seed, p)
					return
				}
				totals[p] += c.Expressions
			}
		}
		ok, _ := paths.DominatesOnAllPaths(variants["globalg"], variants["original"], 4096)
		for _, p := range names[:4] {
			if ok2, _ := paths.DominatesOnAllPaths(variants["globalg"], variants[p], 4096); !ok2 {
				ok = false
			}
		}
		fmt.Fprintf(w, "%8d %7d %12d %12d %12d %12d %12d %14v\n",
			seed, len(decs), totals["original"], totals["mr"], totals["em"],
			totals["am"], totals["globalg"], ok)
	}
	fmt.Fprintln(w)
}

// complexityExp — experiments C1/C2: iteration counts and wall time
// against program size, plus the adversarial redundant chain.
func complexityExp(w io.Writer) {
	fmt.Fprintln(w, "== Experiment C: §4.5 complexity behaviour")

	fmt.Fprintln(w, "\n-- C1a: random structured programs (iterations stay flat => 'linear for realistic programs')")
	fmt.Fprintf(w, "%8s %8s %8s %12s %12s\n", "size", "instrs", "blocks", "AMiters", "time")
	for _, size := range []int{5, 10, 20, 40, 80, 160} {
		iters, instrs, blocks, dur := sweepPoint(func(seed int64) *ir.Graph {
			return cfggen.Structured(seed, cfggen.Config{Size: size})
		}, 5)
		fmt.Fprintf(w, "%8d %8.0f %8.0f %12.1f %12v\n", size, instrs, blocks, iters, dur)
	}

	fmt.Fprintln(w, "\n-- C1b: random unstructured programs")
	fmt.Fprintf(w, "%8s %8s %8s %12s %12s\n", "size", "instrs", "blocks", "AMiters", "time")
	for _, size := range []int{5, 10, 20, 40, 80, 160} {
		iters, instrs, blocks, dur := sweepPoint(func(seed int64) *ir.Graph {
			return cfggen.Unstructured(seed, cfggen.Config{Size: size})
		}, 5)
		fmt.Fprintf(w, "%8d %8.0f %8.0f %12.1f %12v\n", size, instrs, blocks, iters, dur)
	}

	fmt.Fprintln(w, "\n-- C1c: adversarial redundant chain (iterations grow ~linearly with k => quadratic worst case)")
	fmt.Fprintf(w, "%8s %8s %12s %12s %12s\n", "k", "instrs", "AMiters", "eliminated", "time")
	for _, k := range []int{2, 4, 8, 16, 32, 64} {
		g := cfggen.RedundantChain(k)
		instrs := g.InstrCount()
		start := time.Now()
		st := am.Run(g)
		dur := time.Since(start)
		fmt.Fprintf(w, "%8d %8d %12d %12d %12v\n", k, instrs, st.Iterations, st.Eliminated, dur.Round(time.Microsecond))
	}

	fmt.Fprintln(w, "\n-- C2: single-pass costs on structured programs (near-linear flush)")
	fmt.Fprintf(w, "%8s %8s %14s %14s %14s\n", "size", "instrs", "globalg", "am-only", "rae-once")
	for _, size := range []int{10, 20, 40, 80, 160} {
		g0 := cfggen.Structured(1, cfggen.Config{Size: size})
		instrs := g0.InstrCount()
		tGlob := timeIt(func() { core.Optimize(g0.Clone()) })
		tAM := timeIt(func() { am.Run(g0.Clone()) })
		tRae := timeIt(func() {
			g := g0.Clone()
			g.SplitCriticalEdges()
			rae.Eliminate(g)
		})
		fmt.Fprintf(w, "%8d %8d %14v %14v %14v\n", size, instrs, tGlob, tAM, tRae)
	}
	fmt.Fprintln(w)
}

// terminatingEnvs draws random environments and keeps those on which the
// base program terminates within the default step budget. Comparing
// per-run costs on truncated executions would be biased: under a fixed
// step cap a leaner program completes MORE iterations, inflating its
// apparent cost (see EXPERIMENTS.md, "Methodology").
func terminatingEnvs(base *ir.Graph, n int, seed int64) []map[ir.Var]int64 {
	candidates := metrics.RandomEnvs(base.SourceVars(), 4*n, seed)
	var out []map[ir.Var]int64
	for _, env := range candidates {
		if len(out) == n {
			break
		}
		if !interp.Run(base, env, 0).Truncated {
			out = append(out, env)
		}
	}
	return out
}

func sweepPoint(gen func(int64) *ir.Graph, n int) (iters, instrs, blocks float64, dur time.Duration) {
	start := time.Now()
	for seed := int64(0); seed < int64(n); seed++ {
		g := gen(seed)
		instrs += float64(g.InstrCount())
		blocks += float64(len(g.Blocks))
		st := am.Run(g)
		iters += float64(st.Iterations)
	}
	return iters / float64(n), instrs / float64(n), blocks / float64(n),
		(time.Since(start) / time.Duration(n)).Round(time.Microsecond)
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start).Round(time.Microsecond)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
