package main

import (
	"strings"
	"testing"
)

func TestFiguresExperiment(t *testing.T) {
	var sb strings.Builder
	figuresExp(&sb, 4)
	out := sb.String()
	for _, want := range []string{"fig08", "running", "globalg", "am-restricted"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in figures experiment output", want)
		}
	}
	if strings.Contains(out, "SEMANTICS VIOLATION") {
		t.Errorf("semantics violation reported:\n%s", out)
	}
}

func TestRunningExperiment(t *testing.T) {
	var sb strings.Builder
	runningExp(&sb)
	out := sb.String()
	// The phase-by-phase trace must show the Figure 12 and Figure 15
	// signatures.
	for _, want := range []string{
		"Figure 12", "Figure 14", "Figure 15",
		"h2 := x + z",        // initialization
		"if h2 > y + i then", // reconstructed condition
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in running experiment output", want)
		}
	}
}

func TestOptimalityExperimentSmall(t *testing.T) {
	var sb strings.Builder
	optimalityExp(&sb, 3, 4)
	out := sb.String()
	if !strings.Contains(out, "dominance violations within the Theorem 5.2 universe: none") {
		t.Errorf("dominance violations (or missing line):\n%s", out)
	}
	if !strings.Contains(out, "semantics violations: 0") {
		t.Errorf("semantics violations:\n%s", out)
	}
}

func TestLifetimesExperiment(t *testing.T) {
	var sb strings.Builder
	lifetimesExp(&sb, 4)
	out := sb.String()
	for _, want := range []string{"Theorem 5.4", "busyLife", "lazyLife", "flush reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestPathsExperiment(t *testing.T) {
	var sb strings.Builder
	pathsExp(&sb, 4)
	out := sb.String()
	if !strings.Contains(out, "all-paths") {
		t.Errorf("missing header:\n%s", out)
	}
	if strings.Contains(out, "false") {
		t.Errorf("path dominance violated:\n%s", out)
	}
}

func TestComplexityExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("complexity sweep in -short mode")
	}
	var sb strings.Builder
	complexityExp(&sb)
	out := sb.String()
	for _, want := range []string{"C1a", "C1c", "adversarial", "AMiters"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in complexity output", want)
		}
	}
}

func TestApplyPipelineUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown pipeline accepted")
		}
	}()
	applyPipeline("nope", nil)
}
