package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"assignmentmotion/internal/corpus"
	"assignmentmotion/internal/pass"
)

// freeAddr reserves a loopback port and releases it for the daemon to
// claim. The gap is a benign race: worst case the test fails loudly.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

// TestDaemonLifecycle boots the real daemon, serves real traffic, drains
// it with SIGTERM, and checks the cache index survived the shutdown.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-listen", addr, "-cache-dir", dir, "-drain-timeout", "5s"}, os.Stdout, os.Stderr)
	}()
	waitHealthy(t, base)

	body, _ := json.Marshal(map[string]string{"program": corpus.Source("dotprod")})
	resp, err := http.Post(base+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var or struct {
		Outcome string `json:"outcome"`
		Program string `json:"program"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || or.Outcome != "optimized" || or.Program == "" {
		t.Fatalf("optimize: status=%d outcome=%q", resp.StatusCode, or.Outcome)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mbody), "amoptd_requests_total") {
		t.Error("metrics endpoint missing request counters")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code = %d; want 0 (clean drain)", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}

	// The drain flushed the persistent store: payload + index on disk.
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Errorf("cache index not flushed: %v", err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.cache.json"))
	if err != nil || len(entries) == 0 {
		t.Errorf("no cache entries persisted (err=%v)", err)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, os.Stdout, os.Stderr); code != 1 {
		t.Errorf("bad flag exit = %d; want 1", code)
	}
	if code := run([]string{"positional"}, os.Stdout, os.Stderr); code != 1 {
		t.Errorf("positional arg exit = %d; want 1", code)
	}
}

func TestDaemonListenFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if code := run([]string{"-listen", ln.Addr().String()}, os.Stdout, os.Stderr); code != 1 {
		t.Errorf("occupied port exit = %d; want 1", code)
	}
}

func TestDaemonUnusableCacheDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-cache-dir", filepath.Join(file, "sub")}, os.Stdout, os.Stderr); code != 1 {
		t.Errorf("unusable cache dir exit = %d; want 1", code)
	}
}

// TestDaemonRegistryComplete pins the pass registry as linked into THIS
// binary. The registry is populated by blank imports; the root facade's
// imports cover amopt, but amoptd links the engine without the facade,
// and before the engine grew its own blank-import block the daemon
// silently served a partial registry (no copyprop, dce, em, emcp, gvn,
// gvn-emcp, mr, pde). This test must not import the assignmentmotion
// root package, or it would mask exactly that regression.
func TestDaemonRegistryComplete(t *testing.T) {
	want := []string{
		"aht", "am", "am-restricted", "copyprop", "dce", "em", "emcp",
		"flush", "globalg", "gvn", "gvn-emcp", "init", "mr", "pde",
		"rae", "split", "tidy",
	}
	got := pass.Names()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("registry linked into amoptd = %v; want %v", got, want)
	}
}
