// Command amoptd serves the assignment-motion optimizer over HTTP: an
// optimization-as-a-service daemon with persistent result caching,
// admission control, and live observability.
//
// Usage:
//
//	amoptd [flags]
//
//	-listen :8080                address to serve on
//	-cache-dir DIR               persistent result cache (empty = memory
//	                             only; results then die with the process)
//	-cache-max-bytes N           on-disk cache cap in bytes
//	                             (0 = 256 MiB default, -1 = uncapped)
//	-cache-size N                in-memory cache entries per pipeline
//	                             configuration (0 = engine default)
//	-workers N                   concurrent optimization jobs
//	                             (0 = GOMAXPROCS)
//	-solver-workers N            parallel dataflow solver goroutines per
//	                             job (0 = GOMAXPROCS/workers, 1 = serial)
//	-queue-depth N               jobs allowed to wait for a worker before
//	                             requests shed with 429 (0 = 4*workers)
//	-deadline D                  default per-request deadline (e.g. 10s)
//	-max-deadline D              hard cap on requested deadlines
//	-max-body N                  request body limit in bytes (0 = 8 MiB)
//	-max-batch N                 programs per batch request (0 = 1024)
//	-max-run-steps N             hard cap on the per-execution step
//	                             budget of POST /v1/run (0 = 1,000,000)
//	-drain-timeout D             how long SIGTERM waits for in-flight
//	                             requests before forcing exit
//	-incremental                 region-granular incremental
//	                             re-optimization: a resubmitted program
//	                             edited inside one region replays only
//	                             that region (default true)
//	-peers URL,URL               other cluster members' base URLs;
//	                             setting this turns on cluster mode
//	-advertise URL               this node's own base URL, as peers reach
//	                             it (required with -peers)
//	-cluster-mode MODE           "worker" (ring member, default) or
//	                             "coordinator" (routes everything to the
//	                             workers, owns no shard)
//	-hedge-after D               launch a hedged forward to the next ring
//	                             replica when the primary has not answered
//	                             within D (0 = 50ms default, -1 disables)
//	-peer-retries N              extra forward cycles over the candidate
//	                             peers after the first fails
//	                             (0 = 2 default, -1 disables)
//	-no-local-fallback           answer 503 peer-unavailable instead of
//	                             computing unowned jobs locally when no
//	                             peer is usable
//
// Endpoints: POST /v1/optimize, POST /v1/optimize/batch (NDJSON stream),
// POST /v1/run (optimize + execute source and optimized graphs on caller
// inputs), GET /v1/passes, GET /healthz (liveness), GET /readyz (readiness: drain
// state and ring membership), GET /metrics (Prometheus text format).
// See internal/server for the request/response schema, DESIGN.md §10 for
// the architecture, and DESIGN.md §13 for cluster failure semantics.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting,
// /healthz turns 503, in-flight requests finish (up to -drain-timeout),
// and the persistent cache index is flushed before exit.
//
// Exit codes: 0 clean shutdown; 1 usage or startup failure (bad flags,
// unusable cache directory, listen failure); 2 unclean shutdown (drain
// timeout expired or the cache flush failed).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"assignmentmotion/internal/cluster"
	"assignmentmotion/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("amoptd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen        = fs.String("listen", ":8080", "address to serve on")
		cacheDir      = fs.String("cache-dir", "", "persistent result cache directory (empty = memory only)")
		cacheMaxBytes = fs.Int64("cache-max-bytes", 0, "on-disk cache cap in bytes (0 = default, -1 = uncapped)")
		cacheSize     = fs.Int("cache-size", 0, "in-memory cache entries per pipeline configuration (0 = default)")
		workers       = fs.Int("workers", 0, "concurrent optimization jobs (0 = GOMAXPROCS)")
		solverWorkers = fs.Int("solver-workers", 0, "parallel dataflow solver goroutines per job (0 = GOMAXPROCS/workers, 1 = serial)")
		queueDepth    = fs.Int("queue-depth", 0, "jobs allowed to wait for a worker (0 = 4*workers)")
		deadline      = fs.Duration("deadline", 10*time.Second, "default per-request deadline")
		maxDeadline   = fs.Duration("max-deadline", 60*time.Second, "hard cap on requested deadlines")
		maxBody       = fs.Int64("max-body", 0, "request body limit in bytes (0 = 8 MiB)")
		maxBatch      = fs.Int("max-batch", 0, "programs per batch request (0 = 1024)")
		maxRunSteps   = fs.Int("max-run-steps", 0, "per-execution step budget cap for /v1/run (0 = 1,000,000)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "SIGTERM drain window for in-flight requests")
		incremental   = fs.Bool("incremental", true, "region-granular incremental re-optimization of edited programs")

		peers           = fs.String("peers", "", "comma-separated base URLs of the other cluster members (empty = single-node)")
		advertise       = fs.String("advertise", "", "this node's own base URL as peers reach it (required with -peers)")
		clusterMode     = fs.String("cluster-mode", "worker", `cluster role: "worker" or "coordinator"`)
		hedgeAfter      = fs.Duration("hedge-after", 0, "hedge a forward to the next replica after this latency (0 = 50ms, negative disables)")
		peerRetries     = fs.Int("peer-retries", 0, "extra forward cycles over the candidate peers (0 = 2, negative disables)")
		noLocalFallback = fs.Bool("no-local-fallback", false, "refuse to compute unowned jobs locally when no peer is usable (answer 503)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "amoptd: unexpected arguments %q\n", fs.Args())
		return 1
	}

	var clusterCfg *cluster.Config
	if *peers != "" {
		if *advertise == "" {
			fmt.Fprintf(stderr, "amoptd: -peers requires -advertise (this node's own base URL)\n")
			return 1
		}
		mode, err := cluster.ParseMode(*clusterMode)
		if err != nil {
			fmt.Fprintf(stderr, "amoptd: %v\n", err)
			return 1
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		clusterCfg = &cluster.Config{
			Self:       *advertise,
			Peers:      peerList,
			Mode:       mode,
			HedgeAfter: *hedgeAfter,
			Retries:    *peerRetries,
		}
	}

	logger := log.New(stderr, "amoptd: ", log.LstdFlags)

	srv, err := server.New(server.Config{
		Workers:         *workers,
		SolverWorkers:   *solverWorkers,
		QueueDepth:      *queueDepth,
		CacheDir:        *cacheDir,
		CacheMaxBytes:   *cacheMaxBytes,
		CacheSize:       *cacheSize,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxBodyBytes:    *maxBody,
		MaxBatch:        *maxBatch,
		MaxRunSteps:     *maxRunSteps,
		Incremental:     *incremental,
		Cluster:         clusterCfg,
		NoLocalFallback: *noLocalFallback,
	})
	if err != nil {
		fmt.Fprintf(stderr, "amoptd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "amoptd: %v\n", err)
		srv.Close()
		return 1
	}

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          logger,
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	if *cacheDir != "" {
		logger.Printf("listening on %s (cache %s, %d entries warm)", ln.Addr(), *cacheDir, srv.Store().Len())
	} else {
		logger.Printf("listening on %s (memory-only cache)", ln.Addr())
	}
	if clusterCfg != nil {
		logger.Printf("cluster %s mode, advertising %s, peers %s", clusterCfg.Mode, clusterCfg.Self, strings.Join(clusterCfg.Peers, ","))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	code := 0
	select {
	case err := <-serveErr:
		// The listener died underneath us — not a drain, a failure.
		logger.Printf("serve: %v", err)
		code = 2
	case s := <-sig:
		logger.Printf("received %v, draining (up to %v)", s, *drainTimeout)
		srv.Drain() // healthz -> 503, new work -> 503; in-flight continues
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := hs.Shutdown(ctx)
		cancel()
		if err != nil {
			logger.Printf("drain window expired: %v", err)
			hs.Close()
			code = 2
		}
	}

	if err := srv.Close(); err != nil { // flush the persistent cache index
		logger.Printf("cache flush: %v", err)
		code = 2
	}
	if code == 0 {
		logger.Printf("clean shutdown")
	}
	return code
}
