package assignmentmotion

// The benchmark harness: one benchmark per experiment row in
// EXPERIMENTS.md. Figures are benchmarked through the full global
// algorithm; the scaling benchmarks regenerate the §4.5 complexity
// measurements (near-linear behaviour of single analyses, flat iteration
// counts on random programs, linear iteration growth on the adversarial
// chain); the phase benchmarks separate initialization, assignment
// motion, and the final flush.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"assignmentmotion/internal/aht"
	"assignmentmotion/internal/am"
	"assignmentmotion/internal/arena"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/corpus"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/engine"
	"assignmentmotion/internal/figures"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/gvn"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/lcm"
	"assignmentmotion/internal/metrics"
	"assignmentmotion/internal/mr"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/pde"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/rae"
)

// BenchmarkFigure runs the global algorithm on every embedded paper
// figure (rows F1–F20 of the experiment index).
func BenchmarkFigure(b *testing.B) {
	for _, name := range figures.Names() {
		base := figures.Load(name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Optimize(base.Clone())
			}
		})
	}
}

// BenchmarkPipeline compares the pipelines of the Experiment O table on
// the running example.
func BenchmarkPipeline(b *testing.B) {
	base := figures.Load("running")
	pipelines := map[string]func(*ir.Graph){
		"em":            func(g *ir.Graph) { lcm.Run(g) },
		"am":            func(g *ir.Graph) { am.Run(g) },
		"am-restricted": func(g *ir.Graph) { am.RunRestricted(g) },
		"globalg":       func(g *ir.Graph) { core.Optimize(g) },
	}
	for _, name := range []string{"em", "am", "am-restricted", "globalg"} {
		run := pipelines[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run(base.Clone())
			}
		})
	}
}

// BenchmarkScalingStructured is experiment C1a: the global algorithm on
// random structured programs of growing size.
func BenchmarkScalingStructured(b *testing.B) {
	for _, size := range []int{10, 20, 40, 80} {
		base := cfggen.Structured(1, cfggen.Config{Size: size})
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			b.ReportAllocs()
			var iters int
			for i := 0; i < b.N; i++ {
				g := base.Clone()
				res := core.Optimize(g)
				iters = res.AM.Iterations
			}
			b.ReportMetric(float64(base.InstrCount()), "instrs")
			b.ReportMetric(float64(iters), "AMiters")
		})
	}
}

// BenchmarkScalingUnstructured is experiment C1b.
func BenchmarkScalingUnstructured(b *testing.B) {
	for _, size := range []int{10, 20, 40, 80} {
		base := cfggen.Unstructured(1, cfggen.Config{Size: size})
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			b.ReportAllocs()
			var iters int
			for i := 0; i < b.N; i++ {
				g := base.Clone()
				res := core.Optimize(g)
				iters = res.AM.Iterations
			}
			b.ReportMetric(float64(base.InstrCount()), "instrs")
			b.ReportMetric(float64(iters), "AMiters")
		})
	}
}

// BenchmarkAdversarialChain is experiment C1c: the redundant chain that
// forces Θ(k) assignment motion iterations (the §4.5 worst case).
func BenchmarkAdversarialChain(b *testing.B) {
	for _, k := range []int{4, 8, 16, 32} {
		base := cfggen.RedundantChain(k)
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var iters int
			for i := 0; i < b.N; i++ {
				st := am.Run(base.Clone())
				iters = st.Iterations
			}
			b.ReportMetric(float64(iters), "AMiters")
		})
	}
}

// BenchmarkPhases is experiment C2: the three phases of the global
// algorithm, measured separately on a medium random program.
func BenchmarkPhases(b *testing.B) {
	base := cfggen.Structured(2, cfggen.Config{Size: 40})
	base.SplitCriticalEdges()

	b.Run("initialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Initialize(base.Clone())
		}
	})

	initialized := base.Clone()
	core.Initialize(initialized)
	b.Run("am", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			am.Run(initialized.Clone())
		}
	})

	moved := initialized.Clone()
	am.Run(moved)
	b.Run("flush", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flush.Run(moved.Clone())
		}
	})
}

// BenchmarkAnalyses measures the individual bit-vector analyses
// (Tables 1–3) without their transformations.
func BenchmarkAnalyses(b *testing.B) {
	base := cfggen.Structured(3, cfggen.Config{Size: 40})
	base.SplitCriticalEdges()
	core.Initialize(base)

	b.Run("rae", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rae.Analyze(base)
		}
	})
	b.Run("aht", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			aht.Analyze(base)
		}
	})
	b.Run("flush", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flush.Analyze(base)
		}
	})
}

// BenchmarkInterp measures interpreter throughput (the dynamic cost
// oracle behind every optimality experiment).
func BenchmarkInterp(b *testing.B) {
	g := cfggen.Structured(4, cfggen.Config{Size: 30})
	envs := metrics.RandomEnvs(g.SourceVars(), 8, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		interp.Run(g, envs[i%len(envs)], 0)
	}
}

// BenchmarkParsePrint measures the textual front end round trip.
func BenchmarkParsePrint(b *testing.B) {
	src := figures.Source("running")
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := parse.Parse(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	g := parse.MustParse(src)
	b.Run("print", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			printer.String(g)
		}
	})
}

// BenchmarkRAEGranularity is the ablation for Table 2's footnote:
// instruction-level vs block-level redundancy elimination produce
// identical programs; the solvers differ in node count.
func BenchmarkRAEGranularity(b *testing.B) {
	base := cfggen.Structured(5, cfggen.Config{Size: 60})
	base.SplitCriticalEdges()
	core.Initialize(base)
	b.Run("instruction-level", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rae.Eliminate(base.Clone())
		}
	})
	b.Run("block-level", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rae.EliminateBlocks(base.Clone())
		}
	})
}

// BenchmarkBaselines measures the additional baselines on the running
// example: Morel/Renvoise PRE and partial dead code elimination.
func BenchmarkBaselines(b *testing.B) {
	base := figures.Load("running")
	b.Run("mr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mr.Run(base.Clone())
		}
	})
	b.Run("pde", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pde.Run(base.Clone())
		}
	})
}

// BenchmarkTidy measures the output cleanup pass on an optimized medium
// program full of synthetic nodes.
func BenchmarkTidy(b *testing.B) {
	base := cfggen.Structured(6, cfggen.Config{Size: 40})
	core.Optimize(base)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base.Clone().Tidy()
	}
}

// benchBatch builds the 100-graph workload of the batch-engine rows
// (BENCH_engine.json): distinct random structured programs.
func benchBatch() []*ir.Graph {
	graphs := make([]*ir.Graph, 100)
	for i := range graphs {
		graphs[i] = cfggen.Structured(int64(i), cfggen.Config{Size: 12})
	}
	return graphs
}

// BenchmarkBatchSerialVsParallel is experiment E1: the batch engine over
// a 100-graph batch with one worker vs one worker per core, caching
// disabled so both rows measure pure optimization throughput. On a
// multi-core host the parallel row must beat serial by roughly the core
// count (the jobs are independent); on a single-core host the rows tie.
func BenchmarkBatchSerialVsParallel(b *testing.B) {
	graphs := benchBatch()
	ctx := context.Background()
	for _, row := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)},
	} {
		b.Run(row.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep := engine.OptimizeBatch(ctx, graphs, engine.Options{
					Parallelism: row.workers,
					CacheSize:   -1,
				})
				if rep.Failed != 0 {
					b.Fatalf("failures: %+v", rep)
				}
			}
			b.ReportMetric(float64(len(graphs)), "graphs")
		})
	}
}

// BenchmarkBatchColdVsWarmCache is experiment E2: the same 100-graph
// batch against a cold cache (every graph optimized) and against a
// pre-warmed engine (every graph a content-addressed cache hit). Warm
// runs must be far faster than cold ones.
func BenchmarkBatchColdVsWarmCache(b *testing.B) {
	graphs := benchBatch()
	ctx := context.Background()
	workers := runtime.GOMAXPROCS(0)

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.Options{Parallelism: workers})
			rep := e.OptimizeBatch(ctx, graphs)
			if rep.Failed != 0 || rep.CacheHits != 0 {
				b.Fatalf("cold run: %+v", rep)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		e := engine.New(engine.Options{Parallelism: workers})
		if rep := e.OptimizeBatch(ctx, graphs); rep.Failed != 0 {
			b.Fatalf("warm-up: %+v", rep)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep := e.OptimizeBatch(ctx, graphs)
			if rep.Failed != 0 || rep.CacheHits != len(graphs) {
				b.Fatalf("warm run: %+v", rep)
			}
		}
	})
}

// benchIncrDiamond builds a chain of nd branch diamonds (4nd+2 blocks)
// whose per-diamond patterns are permanently blocked at the branch, so a
// one-block edit stays inside its region — the workload of experiment E3.
// edit < 0 yields the base program; otherwise diamond `edit` gets an
// interface-preserving one-assignment change.
func benchIncrDiamond(nd, edit int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph diamonds {\n  entry s0\n  exit done\n")
	fmt.Fprintf(&sb, "  block s0 {\n    pre := u + v\n    goto d0\n  }\n")
	for i := 0; i < nd; i++ {
		fmt.Fprintf(&sb, "  block d%d {\n    if u + v < 7 then a%d else b%d\n  }\n", i, i, i)
		armY := fmt.Sprintf("y%d := p + q", i)
		if i == edit {
			armY = fmt.Sprintf("y%d := x%d", i, i)
		}
		fmt.Fprintf(&sb, "  block a%d {\n    x%d := p + q\n    %s\n    goto j%d\n  }\n", i, i, armY, i)
		fmt.Fprintf(&sb, "  block b%d {\n    z%d := p - q\n    goto j%d\n  }\n", i, i, i)
		next := fmt.Sprintf("d%d", i+1)
		if i == nd-1 {
			next = "done"
		}
		fmt.Fprintf(&sb, "  block j%d {\n    w%d := x%d\n    goto %s\n  }\n", i, i, i, next)
	}
	fmt.Fprintf(&sb, "  block done { out(u) }\n}\n")
	return sb.String()
}

// BenchmarkIncrementalEdit is experiment E3: a one-block edit on a
// 4002-block program, re-optimized cold (no cache) vs warm through the
// region tier of an incremental engine that has already seen the base
// program. The warm row replays every clean region from its recorded
// artifact and re-runs only the single dirty region; the acceptance
// criterion for the region tier is warm <= 20% of cold wall with >= 90%
// of regions reused. Each warm iteration records the base on a fresh
// engine outside the timer so the timed section is exactly one warm
// re-optimization (run with -benchtime Nx: the untimed re-recording
// makes time-based benchtime expensive).
func BenchmarkIncrementalEdit(b *testing.B) {
	const nd = 1000 // 4*1000+2 = 4002 blocks
	base, err := parse.Parse(benchIncrDiamond(nd, -1))
	if err != nil {
		b.Fatal(err)
	}
	edited, err := parse.Parse(benchIncrDiamond(nd, 500))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		e := engine.New(engine.Options{CacheSize: -1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := e.Optimize(ctx, edited); r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		b.ReportMetric(float64(len(edited.Blocks)), "blocks")
	})

	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		var total, reused int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := engine.New(engine.Options{Incremental: true})
			if r := e.Optimize(ctx, base); r.Err != nil {
				b.Fatal(r.Err)
			}
			b.StartTimer()
			r := e.Optimize(ctx, edited)
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			if r.CacheTier != "region" {
				b.Fatalf("edit was not served by the region tier (tier=%q)", r.CacheTier)
			}
			total, reused = r.RegionsTotal, r.RegionsReused
		}
		b.ReportMetric(float64(len(edited.Blocks)), "blocks")
		b.ReportMetric(float64(total), "regions")
		b.ReportMetric(float64(reused), "reused")
	})
}

// BenchmarkFingerprint measures the content-address hash that keys the
// engine's result cache.
func BenchmarkFingerprint(b *testing.B) {
	g := cfggen.Structured(1, cfggen.Config{Size: 40})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Fingerprint()
	}
}

// solverProblem builds the block-level availability problem (the shape of
// rae's solve) over g with synthetic gen/kill vectors, for the solver
// micro-benchmarks. With dense set the problem carries the vectors in the
// Gen/Kill fields (the fused word-parallel kernel path); otherwise it
// applies them through a Transfer closure (the legacy dispatch path).
func solverProblem(g *ir.Graph, bits int, dense bool) dataflow.Problem {
	n := len(g.Blocks)
	preds := make([][]int, n)
	succs := make([][]int, n)
	for i, b := range g.Blocks {
		for _, p := range b.Preds {
			preds[i] = append(preds[i], int(p))
		}
		for _, s := range b.Succs {
			succs[i] = append(succs[i], int(s))
		}
	}
	gen := make([]bitvec.Vec, n)
	kill := make([]bitvec.Vec, n)
	for i := 0; i < n; i++ {
		gen[i] = bitvec.New(bits)
		kill[i] = bitvec.New(bits)
		gen[i].Set(i % bits)
		kill[i].Set((i * 7) % bits)
	}
	entry := int(g.Entry)
	p := dataflow.Problem{
		N: n, Bits: bits, Dir: dataflow.Forward, Meet: dataflow.All,
		Preds: func(i int) []int { return preds[i] },
		Succs: func(i int) []int { return succs[i] },
		Boundary: func(i int, in bitvec.Vec) {
			if i == entry {
				in.ClearAll()
			}
		},
	}
	if dense {
		p.Gen, p.Kill = gen, kill
	} else {
		p.Transfer = func(i int, in, out bitvec.Vec) {
			out.CopyFrom(in)
			out.AndNot(kill[i])
			out.Or(gen[i])
		}
	}
	return p
}

// BenchmarkSolverOrder is experiment D1: the same availability problem
// solved with the legacy FIFO worklist, with the RPO priority worklist,
// and with the RPO worklist reading dense Gen/Kill vectors through the
// fused word kernel instead of a Transfer closure. The reported
// visits/sweeps metrics show why RPO wins (long acyclic stretches
// propagate in one pass); the genkill row shows what the kernel saves per
// visit: no scratch clear/compare, one fused pass over the words with the
// change bit folded in. The vector width is each graph's real
// assignment-pattern universe (what the motion analyses would solve at),
// and the priority modes share one precomputed visit order exactly as
// production solves do through analysis.Session — a fixpoint round runs
// dozens of solves per order computation, so folding the order build into
// every solve would measure graph traversal, not solving.
func BenchmarkSolverOrder(b *testing.B) {
	for _, row := range []struct {
		name string
		g    *ir.Graph
	}{
		{"chain64", cfggen.RedundantChain(64)},
		{"structured80", cfggen.Structured(1, cfggen.Config{Size: 80})},
		{"unstructured80", cfggen.Unstructured(1, cfggen.Config{Size: 80})},
	} {
		for _, mode := range []string{"fifo", "rpo", "genkill"} {
			p := solverProblem(row.g, ir.AssignUniverse(row.g).Len(), mode == "genkill")
			p.FIFO = mode == "fifo"
			if !p.FIFO {
				var roots []int
				for i := 0; i < p.N; i++ {
					if len(p.Preds(i)) == 0 {
						roots = append(roots, i)
					}
				}
				p.Order = dataflow.FlowOrder(p.N, roots, p.Succs)
			}
			b.Run(row.name+"/"+mode, func(b *testing.B) {
				b.ReportAllocs()
				var res dataflow.Result
				for i := 0; i < b.N; i++ {
					res = dataflow.Solve(p)
				}
				b.ReportMetric(float64(res.Visits), "visits")
				b.ReportMetric(float64(res.Sweeps), "sweeps")
			})
		}
	}
}

// BenchmarkSolverParallel is experiment D3: one availability solve over a
// single large graph, serial vs fanned out over the SCC condensation to
// one worker per core. Two workloads: the original cfggen.Structured size
// 1000 (~2.7k blocks at its real ~2.9k-pattern universe width, ~2 MB of
// live fact vectors) and a 10k-block variant (size 3800: 10,249 blocks,
// ~6.7k-pattern universe, ~35 MB of fact vectors) that stresses the
// per-component scheduling at an order of magnitude more state. On a
// multi-core host the parallel rows must win on the acyclic spine
// (independent components solve concurrently); on a single-core host the
// rows tie and the CI bench-record job supplies the real numbers. Work
// counters stay deterministic either way.
func BenchmarkSolverParallel(b *testing.B) {
	small := cfggen.Structured(11, cfggen.Config{Size: 1000})
	big := cfggen.Structured(11, cfggen.Config{Size: 3800})
	for _, row := range []struct {
		name    string
		g       *ir.Graph
		workers int
	}{
		{"serial", small, 1},
		{fmt.Sprintf("parallel%d", runtime.GOMAXPROCS(0)), small, runtime.GOMAXPROCS(0)},
		{"10k_serial", big, 1},
		{fmt.Sprintf("10k_parallel%d", runtime.GOMAXPROCS(0)), big, runtime.GOMAXPROCS(0)},
	} {
		g := row.g
		p := solverProblem(g, ir.AssignUniverse(g).Len(), true)
		p.Workers = row.workers
		var roots []int
		for i := 0; i < p.N; i++ {
			if len(p.Preds(i)) == 0 {
				roots = append(roots, i)
			}
		}
		p.Order = dataflow.FlowOrder(p.N, roots, p.Succs)
		b.Run(row.name, func(b *testing.B) {
			b.ReportAllocs()
			var res dataflow.Result
			for i := 0; i < b.N; i++ {
				res = dataflow.Solve(p)
			}
			b.ReportMetric(float64(len(g.Blocks)), "blocks")
			b.ReportMetric(float64(res.Visits), "visits")
			b.ReportMetric(float64(res.Sweeps), "sweeps")
		})
	}
}

// BenchmarkSolverArena is experiment D2: the same solve with fresh heap
// vectors per run vs carved out of one reused arena — the allocation story
// behind the warm assignment-motion fixpoint.
func BenchmarkSolverArena(b *testing.B) {
	g := cfggen.Structured(1, cfggen.Config{Size: 80})
	p := solverProblem(g, ir.AssignUniverse(g).Len(), false)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dataflow.Solve(p)
		}
	})
	b.Run("arena", func(b *testing.B) {
		ar := arena.Get()
		defer arena.Put(ar)
		p := p
		p.Arena = ar
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := ar.Mark()
			dataflow.Solve(p)
			ar.Release(m)
		}
	})
}

// BenchmarkMiniLang measures the structured front end end-to-end.
func BenchmarkMiniLang(b *testing.B) {
	src := `
prog checksum {
  sum := 0
  i := 0
  do {
    term := (base + i) * (base + i)
    sum := sum + term % 97
    i := i + 1
  } while i < 8
  out(sum)
}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := parse.ParseProgram(src)
		if err != nil {
			b.Fatal(err)
		}
		core.Optimize(g)
	}
}

// BenchmarkApplyPasses measures the facade pass-composition path (Apply
// and the §6 EM/CP interleaving) on a batch of random structured graphs —
// the session-sharing benchmark behind the Apply/RunEMCP rows of
// BENCH_engine.json.
func BenchmarkApplyPasses(b *testing.B) {
	graphs := make([]*Graph, 40)
	for i := range graphs {
		graphs[i] = RandomStructured(int64(i), GenConfig{Size: 12})
	}
	b.Run("init,am,flush", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, g := range graphs {
				if err := Apply(g.Clone(), PassInit, PassAM, PassFlush); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("emcp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, g := range graphs {
				RunEMCP(g.Clone())
			}
		}
	})
}

// BenchmarkAMRestricted measures the Dhamdhere-style restricted AM
// baseline end to end. Its admission test ("is hoisting pattern α
// immediately profitable?") is the allocation hot spot this row tracks:
// the per-pattern trial-clone implementation cloned the whole graph once
// per pattern per fixpoint iteration; the batched implementation runs one
// trial per iteration and reads all patterns' occurrence counts off it.
// Rows are recorded in BENCH_engine.json ("amRestricted").
func BenchmarkAMRestricted(b *testing.B) {
	rows := []struct {
		name string
		g    *ir.Graph
	}{
		{"quantize", corpus.Load("quantize")},
		{"structured20", cfggen.Structured(2, cfggen.Config{Size: 20})},
		{"structured40", cfggen.Structured(3, cfggen.Config{Size: 40})},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) {
			b.ReportAllocs()
			var iters int
			for i := 0; i < b.N; i++ {
				st := am.RunRestricted(row.g.Clone())
				iters = st.Iterations
			}
			b.ReportMetric(float64(iters), "AMiters")
		})
	}
}

// BenchmarkGVNUniverse measures the second-order effect the gvn-emcp
// composite exists for: running value numbering BEFORE initialization
// collapses equivalent recomputations into copies, which shrinks the
// expression-pattern universe the AM bit-vector analyses range over and
// with it the motion fixpoint's work. The patterns metric is the universe
// size after decomposition; AMiters is the motion fixpoint's iteration
// count. Rows are recorded in BENCH_dataflow.json.
func BenchmarkGVNUniverse(b *testing.B) {
	bases := []struct {
		name string
		g    *ir.Graph
	}{
		{"exprchain", corpus.Load("exprchain")},
		{"quantize", corpus.Load("quantize")},
		{"structured40", cfggen.Structured(3, cfggen.Config{Size: 40})},
	}
	for _, base := range bases {
		for _, mode := range []string{"without", "gvn-first"} {
			mode := mode
			b.Run(base.name+"/"+mode, func(b *testing.B) {
				b.ReportAllocs()
				var patterns, iters int
				for i := 0; i < b.N; i++ {
					g := base.g.Clone()
					if mode == "gvn-first" {
						gvn.Run(g)
					}
					g.SplitCriticalEdges()
					core.Initialize(g)
					patterns = ir.AssignUniverse(g).Len()
					st := am.Run(g)
					iters = st.Iterations
					flush.Run(g)
				}
				b.ReportMetric(float64(patterns), "patterns")
				b.ReportMetric(float64(iters), "AMiters")
			})
		}
	}
}
