package assignmentmotion

// The differential fuzzing layer (PR 1). Lazy-code-motion-style pipelines
// are classically validated by differential execution against the
// unoptimized program; here every generated graph is optimized by the
// batch engine and the result is compared with the untouched original:
//
//   - trace equivalence on random input ensembles (verify.Equivalent,
//     the Theorem 5.1 oracle), and
//   - the paper's cost-measure inequalities: evaluations of non-trivial
//     expressions never increase (Theorem 5.2), and executed SOURCE
//     assignments never increase. Raw AssignExecs may legitimately rise
//     because the initialization phase introduces temporaries h_ε; the
//     paper accounts those separately (Theorems 5.3/5.4), so the
//     assignment inequality is stated net of TempAssignExecs.
//
// TestDifferentialFuzz covers ≥ 500 graphs per regular `go test` run.
// FuzzOptimize is the native fuzz target (go test -fuzz=FuzzOptimize),
// seeded with every embedded paper figure and corpus kernel.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/corpus"
	"assignmentmotion/internal/figures"
)

// checkOptimized asserts the differential property for one (base,
// optimized) pair. It returns an error string instead of failing so both
// the test and the fuzz target can use it.
func checkOptimized(base, opt *Graph, runs int, seed int64) error {
	if err := opt.Validate(); err != nil {
		return fmt.Errorf("invalid optimized graph: %w", err)
	}
	rep := Equivalent(base, opt, runs, seed)
	if !rep.Equivalent {
		return fmt.Errorf("semantics changed: %s", rep.Detail)
	}
	if rep.A.Truncated > 0 || rep.B.Truncated > 0 {
		// Step-budget truncation makes the cost counters incomparable;
		// the prefix trace check above is still meaningful.
		return nil
	}
	if rep.B.ExprEvals > rep.A.ExprEvals {
		return fmt.Errorf("expression evaluations increased %d -> %d", rep.A.ExprEvals, rep.B.ExprEvals)
	}
	srcA := rep.A.AssignExecs - rep.A.TempAssignExecs
	srcB := rep.B.AssignExecs - rep.B.TempAssignExecs
	if srcB > srcA {
		return fmt.Errorf("source assignment executions increased %d -> %d", srcA, srcB)
	}
	return nil
}

// TestDifferentialFuzz runs the property over ≥ 500 generated graphs —
// chain, structured, and unstructured variants — through the parallel
// batch engine. -short keeps a representative sliver.
func TestDifferentialFuzz(t *testing.T) {
	type variant struct {
		name string
		gen  func(seed int64) *Graph
	}
	variants := []variant{
		{"structured", func(s int64) *Graph { return RandomStructured(s, GenConfig{Size: 8}) }},
		{"structured-large", func(s int64) *Graph { return RandomStructured(s, GenConfig{Size: 20, Vars: 4}) }},
		{"structured-noloops", func(s int64) *Graph { return RandomStructured(s, GenConfig{Size: 10, NoLoops: true}) }},
		{"unstructured", func(s int64) *Graph { return RandomUnstructured(s, GenConfig{Size: 8}) }},
		{"unstructured-dense", func(s int64) *Graph { return RandomUnstructured(s, GenConfig{Size: 16, OutProb: 0.6}) }},
		{"chain", func(s int64) *Graph { return cfggen.RedundantChain(1 + int(s%24)) }},
	}
	seedsPerVariant := 85 // 6 * 85 = 510 graphs
	if testing.Short() {
		seedsPerVariant = 10
	}

	var graphs []*Graph
	var labels []string
	for _, v := range variants {
		for s := 0; s < seedsPerVariant; s++ {
			graphs = append(graphs, v.gen(int64(s)))
			labels = append(labels, fmt.Sprintf("%s/seed%d", v.name, s))
		}
	}

	rep := OptimizeBatch(context.Background(), graphs, BatchOptions{
		Parallelism: 2 * runtime.GOMAXPROCS(0),
	})
	if rep.Failed != 0 {
		for _, r := range rep.Results {
			if r.Err != nil {
				t.Errorf("%s: %v", labels[r.Index], r.Err)
			}
		}
		t.Fatalf("%d/%d graphs failed to optimize", rep.Failed, rep.Graphs)
	}
	if rep.Graphs < 500 && !testing.Short() {
		t.Fatalf("fuzz corpus shrank to %d graphs; keep it ≥ 500", rep.Graphs)
	}
	for i, r := range rep.Results {
		if err := checkOptimized(graphs[i], r.Graph, 3, int64(i)+1); err != nil {
			t.Errorf("%s: %v", labels[i], err)
		}
	}
	// The chain variant repeats fingerprints across seeds (k = seed%24
	// collides), so the run also exercises the cache under load.
	if rep.CacheHits == 0 {
		t.Error("expected duplicate fingerprints to hit the cache")
	}
}

// FuzzOptimize is the native differential fuzz target: any .fg source the
// parser accepts must optimize to a valid, trace-equivalent program with
// non-increasing cost measures. The seed corpus is every paper figure and
// every corpus kernel.
//
// Run with: go test -fuzz=FuzzOptimize -fuzztime=30s .
func FuzzOptimize(f *testing.F) {
	for _, name := range figures.Names() {
		f.Add(figures.Source(name))
	}
	for _, name := range corpus.Names() {
		f.Add(corpus.Source(name))
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		base, err := Parse(src)
		if err != nil {
			t.Skip("unparsable input")
		}
		if base.InstrCount() > 400 || len(base.Blocks) > 200 {
			t.Skip("oversized graph")
		}
		g := base.Clone()
		Optimize(g) // a panic here is a fuzz finding
		if err := checkOptimized(base, g, 3, 1); err != nil {
			t.Fatalf("%v\n--- input\n%s\n--- optimized\n%s", err, src, Format(g))
		}
	})
}
