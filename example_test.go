package assignmentmotion_test

import (
	"fmt"

	"assignmentmotion"
)

// The smallest end-to-end use: parse, optimize, run.
func ExampleOptimize() {
	g := assignmentmotion.MustParse(`
graph cse {
  entry a
  exit e
  block a {
    x := p + q
    y := p + q
    goto e
  }
  block e { out(x, y) }
}
`)
	assignmentmotion.Optimize(g)
	r := assignmentmotion.Run(g, map[assignmentmotion.Var]int64{"p": 2, "q": 3}, 0)
	fmt.Println("trace:", r.Trace)
	fmt.Println("evaluations of p+q:", r.Counts.ExprEvals)
	// Output:
	// trace: [5 5]
	// evaluations of p+q: 1
}

// Individual passes compose through Apply.
func ExampleApply() {
	g := assignmentmotion.MustParse(`
graph demo {
  entry a
  exit e
  block a {
    x := p + q
    x := p + q
    goto e
  }
  block e { out(x) }
}
`)
	if err := assignmentmotion.Apply(g, assignmentmotion.PassAM); err != nil {
		panic(err)
	}
	m := assignmentmotion.Measure(g)
	fmt.Println("assignments left:", m.Assignments)
	// Output:
	// assignments left: 1
}

// ParseNested accepts full expressions and lowers them to 3-address form
// (the §6 decomposition of Figure 18).
func ExampleParseNested() {
	g, err := assignmentmotion.ParseNested(`
graph nested {
  entry a
  exit e
  block a {
    x := a0 + b0 + c0
    goto e
  }
  block e { out(x) }
}
`)
	if err != nil {
		panic(err)
	}
	fmt.Print(assignmentmotion.Format(g))
	// Output:
	// graph nested {
	//   entry a
	//   exit e
	//   block a {
	//     t1 := a0 + b0
	//     x := t1 + c0
	//     goto e
	//   }
	//   block e {
	//     out(x)
	//   }
	// }
}

// Equivalent is the randomized semantics-preservation oracle.
func ExampleEquivalent() {
	src := `
graph p {
  entry a
  exit e
  block a {
    y := u * v
    goto e
  }
  block e { out(y) }
}
`
	a := assignmentmotion.MustParse(src)
	b := a.Clone()
	assignmentmotion.Optimize(b)
	rep := assignmentmotion.Equivalent(a, b, 20, 1)
	fmt.Println("equivalent:", rep.Equivalent)
	// Output:
	// equivalent: true
}
